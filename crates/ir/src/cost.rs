//! Shared software cost model for the co-design loop.
//!
//! Every layer that prices a candidate design point against the *software*
//! baseline — `finesse-dse`'s explorer, `finesse-sim`'s reports, and the
//! `experiments` harness that regenerates `results/table2.txt` /
//! `results/fig2.txt` — consumes a [`CostModel`] from this module instead of
//! carrying its own embedded constants.
//!
//! A model comes from one of two places:
//!
//! * [`CostModel::analytic`] — the paper-style analytic defaults, derived from
//!   the kernel shapes actually shipped in PRs 2–7 (CIOS Montgomery limbs,
//!   lazy-reduction tower multiplication, the sparse 13-`fq_mul` Miller line,
//!   Lim–Lee fixed-base combs, signed-digit batch-affine Pippenger windows,
//!   and the deferred-pairing batch accumulator). The per-shape operation
//!   counts live in [`shapes`] and are calibrated once against this
//!   container's measured medians; they are the *only* per-kernel cost
//!   constants in the workspace.
//! * [`CostModel::from_bench_json`] / [`CostModel::load`] — the measured
//!   medians committed in `results/BENCH_fieldops.json` (schema
//!   `finesse-bench-fieldops/v4` through `/v6`), which is the preferred baseline:
//!   HW/SW comparisons are only meaningful against the current software.

use std::fmt;
use std::path::Path;

/// A per-kernel software cost, in nanoseconds per operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// One base-field Montgomery multiplication.
    FpMul,
    /// One extension-tower (`Fq`) multiplication with lazy reduction.
    FqMul,
    /// Variable-base G1 scalar multiplication (2-GLV + JSF).
    G1Mul,
    /// Fixed-base G1 scalar multiplication (Lim–Lee comb).
    G1MulFixed,
    /// Variable-base G2 scalar multiplication (ψ-based GLS).
    G2Mul,
    /// Fixed-base G2 scalar multiplication.
    G2MulFixed,
    /// 256-point G1 multi-scalar multiplication (signed-digit Pippenger).
    Msm256,
    /// 1024-point G1 multi-scalar multiplication.
    Msm1024,
    /// 4096-point G1 multi-scalar multiplication.
    Msm4096,
    /// One full pairing (Miller loop + final exponentiation).
    Pairing,
    /// Amortized cost of one check inside a 32-check batched verification.
    BatchVerifyCheck,
}

impl Kernel {
    /// All kernels a model can price, in report order.
    pub const ALL: [Kernel; 11] = [
        Kernel::FpMul,
        Kernel::FqMul,
        Kernel::G1Mul,
        Kernel::G1MulFixed,
        Kernel::G2Mul,
        Kernel::G2MulFixed,
        Kernel::Msm256,
        Kernel::Msm1024,
        Kernel::Msm4096,
        Kernel::Pairing,
        Kernel::BatchVerifyCheck,
    ];

    /// Stable label, matching the bench JSON field prefixes.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::FpMul => "fp_mul",
            Kernel::FqMul => "fq_mul",
            Kernel::G1Mul => "g1_mul",
            Kernel::G1MulFixed => "g1_mul_fixed",
            Kernel::G2Mul => "g2_mul",
            Kernel::G2MulFixed => "g2_mul_fixed",
            Kernel::Msm256 => "msm256",
            Kernel::Msm1024 => "msm1024",
            Kernel::Msm4096 => "msm4096",
            Kernel::Pairing => "pairing",
            Kernel::BatchVerifyCheck => "batch_verify_check",
        }
    }
}

/// Per-kernel costs for one curve, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelCosts {
    pub fp_mul_ns: f64,
    pub fq_mul_ns: f64,
    pub g1_mul_ns: f64,
    pub g1_mul_fixed_ns: f64,
    pub g2_mul_ns: f64,
    pub g2_mul_fixed_ns: f64,
    pub msm256_ns: f64,
    pub msm1024_ns: f64,
    pub msm4096_ns: f64,
    pub pairing_ns: f64,
    /// Absent when the source JSON has no `batch_verify` row for the curve.
    pub batch_verify_check_ns: Option<f64>,
}

impl KernelCosts {
    /// Cost of `kernel` in nanoseconds, if this row prices it.
    pub fn get(&self, kernel: Kernel) -> Option<f64> {
        match kernel {
            Kernel::FpMul => Some(self.fp_mul_ns),
            Kernel::FqMul => Some(self.fq_mul_ns),
            Kernel::G1Mul => Some(self.g1_mul_ns),
            Kernel::G1MulFixed => Some(self.g1_mul_fixed_ns),
            Kernel::G2Mul => Some(self.g2_mul_ns),
            Kernel::G2MulFixed => Some(self.g2_mul_fixed_ns),
            Kernel::Msm256 => Some(self.msm256_ns),
            Kernel::Msm1024 => Some(self.msm1024_ns),
            Kernel::Msm4096 => Some(self.msm4096_ns),
            Kernel::Pairing => Some(self.pairing_ns),
            Kernel::BatchVerifyCheck => self.batch_verify_check_ns,
        }
    }
}

/// One curve's row in a [`CostModel`].
#[derive(Clone, Debug, PartialEq)]
pub struct CurveCostRow {
    pub curve: String,
    pub p_bits: u32,
    pub limbs: u32,
    pub costs: KernelCosts,
}

/// Where a [`CostModel`]'s numbers came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Analytic defaults from [`shapes`], calibrated once to this container.
    Analytic,
    /// Measured medians loaded from a bench JSON emission.
    Measured {
        schema: String,
        commit: String,
        date: String,
    },
}

/// Errors from the bench-JSON loader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostModelError {
    /// The file could not be read.
    Io(String),
    /// The `schema` field is missing or names an unsupported version.
    SchemaVersion { found: String },
    /// A required field is absent from a curve row.
    MissingField { curve: String, field: &'static str },
    /// The `curves` array is missing or empty.
    NoCurves,
}

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelError::Io(e) => write!(f, "cost model: {e}"),
            CostModelError::SchemaVersion { found } => write!(
                f,
                "cost model: unsupported bench schema {found:?} (expected \
                 finesse-bench-fieldops/v4, /v5, or /v6)"
            ),
            CostModelError::MissingField { curve, field } => {
                write!(
                    f,
                    "cost model: curve row {curve:?} is missing field {field:?}"
                )
            }
            CostModelError::NoCurves => {
                write!(f, "cost model: bench JSON has no curve rows")
            }
        }
    }
}

impl std::error::Error for CostModelError {}

/// A per-curve, per-kernel software cost table with provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    provenance: Provenance,
    rows: Vec<CurveCostRow>,
}

impl CostModel {
    /// The analytic defaults for the paper's seven Table-2 curves.
    pub fn analytic() -> CostModel {
        let rows = shapes::CURVES
            .iter()
            .map(|p| CurveCostRow {
                curve: p.name.to_string(),
                p_bits: p.p_bits,
                limbs: p.limbs,
                costs: shapes::analytic_costs(p),
            })
            .collect();
        CostModel {
            provenance: Provenance::Analytic,
            rows,
        }
    }

    /// Parse a `finesse-bench-fieldops/v4`, `/v5`, or `/v6` JSON emission.
    ///
    /// Consumes the per-curve median rows (`fq_mul_ns`, `g1_mul_ns`,
    /// `g1_mul_fixed_ns`, `msm*_g1_ns`, `pairing_ns`, …) plus the
    /// `batch_verify` block's 32-check amortized cost where present.
    pub fn from_bench_json(text: &str) -> Result<CostModel, CostModelError> {
        let schema = json_str_field(text, "schema").unwrap_or_default();
        const SUPPORTED: [&str; 3] = [
            "finesse-bench-fieldops/v4",
            "finesse-bench-fieldops/v5",
            "finesse-bench-fieldops/v6",
        ];
        if !SUPPORTED.contains(&schema.as_str()) {
            return Err(CostModelError::SchemaVersion { found: schema });
        }
        let commit = json_str_field(text, "commit").unwrap_or_default();
        let date = json_str_field(text, "date").unwrap_or_default();

        let curves_block = json_array_block(text, "curves").ok_or(CostModelError::NoCurves)?;
        let mut rows = Vec::new();
        for obj in json_objects(curves_block) {
            let curve = json_str_field(obj, "curve").ok_or(CostModelError::MissingField {
                curve: String::from("?"),
                field: "curve",
            })?;
            let num = |field: &'static str| -> Result<f64, CostModelError> {
                json_num_field(obj, field).ok_or(CostModelError::MissingField {
                    curve: curve.clone(),
                    field,
                })
            };
            rows.push(CurveCostRow {
                curve: curve.clone(),
                p_bits: num("p_bits")? as u32,
                limbs: num("limbs")? as u32,
                costs: KernelCosts {
                    fp_mul_ns: num("fp_mul_ns")?,
                    fq_mul_ns: num("fq_mul_ns")?,
                    g1_mul_ns: num("g1_mul_ns")?,
                    g1_mul_fixed_ns: num("g1_mul_fixed_ns")?,
                    g2_mul_ns: num("g2_mul_ns")?,
                    g2_mul_fixed_ns: num("g2_mul_fixed_ns")?,
                    msm256_ns: num("msm256_g1_ns")?,
                    msm1024_ns: num("msm1024_g1_ns")?,
                    msm4096_ns: num("msm4096_g1_ns")?,
                    pairing_ns: num("pairing_ns")?,
                    batch_verify_check_ns: None,
                },
            });
        }
        if rows.is_empty() {
            return Err(CostModelError::NoCurves);
        }

        // Optional: 32-check amortized batch-verification rows.
        if let Some(bv) = json_array_block(text, "rows") {
            for obj in json_objects(bv) {
                let (Some(curve), Some(n), Some(amortized)) = (
                    json_str_field(obj, "curve"),
                    json_num_field(obj, "n"),
                    json_num_field(obj, "amortized_ns_per_check"),
                ) else {
                    continue;
                };
                if n as u32 != 32 {
                    continue;
                }
                if let Some(row) = rows.iter_mut().find(|r| r.curve == curve) {
                    row.costs.batch_verify_check_ns = Some(amortized);
                }
            }
        }

        Ok(CostModel {
            provenance: Provenance::Measured {
                schema,
                commit,
                date,
            },
            rows,
        })
    }

    /// Load a measured model from a bench JSON file on disk.
    pub fn load(path: &Path) -> Result<CostModel, CostModelError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CostModelError::Io(format!("{}: {e}", path.display())))?;
        CostModel::from_bench_json(&text)
    }

    /// Where this model's numbers came from.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// One-line provenance string for report footers.
    pub fn describe(&self) -> String {
        match &self.provenance {
            Provenance::Analytic => {
                "analytic defaults (finesse_ir::cost::shapes, calibrated to the \
                 shipped kernel shapes)"
                    .to_string()
            }
            Provenance::Measured {
                schema,
                commit,
                date,
            } => format!("measured medians ({schema}, commit {commit}, {date})"),
        }
    }

    /// The row for `curve`, if priced.
    pub fn curve(&self, curve: &str) -> Option<&CurveCostRow> {
        self.rows.iter().find(|r| r.curve == curve)
    }

    /// All rows, in source order.
    pub fn curves(&self) -> impl Iterator<Item = &CurveCostRow> {
        self.rows.iter()
    }

    /// Cost of `kernel` on `curve` in nanoseconds, if priced.
    pub fn cost_ns(&self, curve: &str, kernel: Kernel) -> Option<f64> {
        self.curve(curve)?.costs.get(kernel)
    }

    /// Curves ranked by ascending cost of `kernel` (unpriced rows omitted).
    pub fn rank(&self, kernel: Kernel) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .rows
            .iter()
            .filter_map(|r| r.costs.get(kernel).map(|c| (r.curve.as_str(), c)))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }
}

/// Analytic kernel-shape formulas, calibrated to the shipped software.
///
/// Operation counts follow the code as of PRs 2–7; each constant is named and
/// owned here, nowhere else. Absolute accuracy against the measured medians is
/// within ~±25% across the seven Table-2 curves; the property the test suite
/// pins is that analytic and measured models *rank* candidates consistently.
pub mod shapes {
    use super::KernelCosts;

    /// Curve family, which fixes the Miller-loop shape and tower degree.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Family {
        Bn,
        Bls12,
        Bls24,
    }

    /// Static parameters of one Table-2 curve.
    #[derive(Clone, Copy, Debug)]
    pub struct CurveParams {
        pub name: &'static str,
        pub family: Family,
        /// Bit length of the curve-generation parameter |t|.
        pub t_bits: u32,
        pub p_bits: u32,
        pub limbs: u32,
    }

    /// The paper's Table-2 curves, in table order.
    pub const CURVES: [CurveParams; 7] = [
        CurveParams {
            name: "BN254N",
            family: Family::Bn,
            t_bits: 63,
            p_bits: 254,
            limbs: 4,
        },
        CurveParams {
            name: "BN462",
            family: Family::Bn,
            t_bits: 115,
            p_bits: 462,
            limbs: 8,
        },
        CurveParams {
            name: "BN638",
            family: Family::Bn,
            t_bits: 158,
            p_bits: 638,
            limbs: 10,
        },
        CurveParams {
            name: "BLS12-381",
            family: Family::Bls12,
            t_bits: 64,
            p_bits: 381,
            limbs: 6,
        },
        CurveParams {
            name: "BLS12-446",
            family: Family::Bls12,
            t_bits: 75,
            p_bits: 446,
            limbs: 7,
        },
        CurveParams {
            name: "BLS12-638",
            family: Family::Bls12,
            t_bits: 107,
            p_bits: 638,
            limbs: 10,
        },
        CurveParams {
            name: "BLS24-509",
            family: Family::Bls24,
            t_bits: 52,
            p_bits: 509,
            limbs: 8,
        },
    ];

    /// CIOS Montgomery multiplication: fixed overhead plus a quadratic limb
    /// term (fit to the inline-limb kernels of PR 2).
    pub const FP_CIOS_BASE_NS: f64 = 20.9;
    pub const FP_CIOS_PER_LIMB2_NS: f64 = 1.30;

    /// Lazy-reduction tower bookkeeping per `fq_mul` (PR 3): deferred carries,
    /// one final reduction, ξ multiplications.
    pub const FQ_TOWER_OVERHEAD_NS: f64 = 195.0;

    /// Variable-base G1 mul (2-GLV + JSF, PR 4–5): per scalar bit, one
    /// Jacobian doubling (~8 fp_mul) plus a half-density mixed add (~3 fp_mul
    /// amortized), ≈ 11 fp_mul/bit before ladder overheads.
    pub const G1_FP_MULS_PER_BIT: f64 = 11.0;
    pub const G1_CAL: f64 = 1.3;

    /// Lim–Lee comb (PR 5): `ceil(bits/w)` iterations of one doubling plus
    /// one table mixed-add, ≈ 19 fp_mul each.
    pub const COMB_FP_MULS_PER_ITER: f64 = 19.0;
    pub const COMB_CAL: f64 = 2.4;

    /// Signed-digit batch-affine Pippenger (PR 5–6): per window, ~6 fp_mul
    /// per point (batch-affine mixed add) plus ~8 fp_mul per 2^(c−1) bucket.
    pub const PIPPENGER_POINT_FP_MULS: f64 = 6.0;
    pub const PIPPENGER_BUCKET_FP_MULS: f64 = 8.0;
    pub const PIPPENGER_CAL: f64 = 2.4;

    /// Miller loop (PR 3 shapes): a doubling step costs one `fpk_sqr`
    /// (~12 fq), point doubling + line evaluation (~11 fq), and one sparse
    /// 13-`fq_mul` line multiplication ⇒ ~36 fq; a NAF-density addition step
    /// adds ~24 fq on a third of the iterations ⇒ ~44 fq per loop bit.
    pub const MILLER_FQ_MULS_PER_BIT: f64 = 44.0;
    /// Final exponentiation: the hard part is dominated by |t|-bit cyclotomic
    /// square chains (~9 fq each); BN curves walk ~2 such chains, BLS24 ~4.
    pub const FEXP_CYCLO_FQ_MULS: f64 = 9.0;
    pub const FEXP_FIXED_FQ_MULS: f64 = 300.0;
    /// Un-modelled adds/subs/Frobenius amount to a flat factor on the pairing.
    pub const PAIRING_CAL: f64 = 2.2;

    /// GLS G2 mul over Fq costs ≈ 3× the G1 mul (tower muls are pricier than
    /// base muls by more than the 4-way scalar split recovers).
    pub const G2_OVER_G1: f64 = 3.0;
    /// Fixed-base combs roughly halve the G2 variable-base cost.
    pub const G2_FIXED_OVER_G2: f64 = 0.5;
    /// Deferred-pairing accumulator (PR 7): one 32-check settle amortizes to
    /// about a tenth of a full pairing per check.
    pub const BATCH_CHECK_OVER_PAIRING: f64 = 0.1;

    /// One CIOS Montgomery multiplication at the given limb count.
    pub fn fp_mul_ns(limbs: u32) -> f64 {
        FP_CIOS_BASE_NS + FP_CIOS_PER_LIMB2_NS * (limbs as f64) * (limbs as f64)
    }

    /// Base-field multiplications per lazy-reduction `fq_mul`
    /// (3 for the quadratic towers of k=12, 9 for the quartic tower of k=24).
    pub fn fq_mul_fp_muls(family: Family) -> f64 {
        match family {
            Family::Bn | Family::Bls12 => 3.0,
            Family::Bls24 => 9.0,
        }
    }

    /// Miller-loop length in bits: BN loops over |6t+2| (≈ |t|+3 bits),
    /// BLS families loop over |t|.
    pub fn miller_loop_bits(family: Family, t_bits: u32) -> f64 {
        match family {
            Family::Bn => (t_bits + 3) as f64,
            Family::Bls12 | Family::Bls24 => t_bits as f64,
        }
    }

    /// Comb width used by the fixed-base tables (8 below 256 bits, 9 above).
    pub fn comb_width(p_bits: u32) -> u32 {
        if p_bits <= 256 {
            8
        } else {
            9
        }
    }

    /// Pippenger window width for an n-point MSM (as picked by the backend).
    pub fn pippenger_window(n: u32) -> u32 {
        match n {
            0..=511 => 8,
            512..=2047 => 10,
            _ => 12,
        }
    }

    /// Price an n-point MSM in nanoseconds.
    pub fn msm_ns(params: &CurveParams, n: u32) -> f64 {
        let c = pippenger_window(n);
        let windows = params.p_bits.div_ceil(c) as f64;
        let per_window = (n as f64) * PIPPENGER_POINT_FP_MULS
            + f64::from(1u32 << (c - 1)) * PIPPENGER_BUCKET_FP_MULS;
        windows * per_window * fp_mul_ns(params.limbs) * PIPPENGER_CAL
    }

    /// Full analytic kernel-cost row for one curve.
    pub fn analytic_costs(params: &CurveParams) -> KernelCosts {
        let fp = fp_mul_ns(params.limbs);
        let fq = fq_mul_fp_muls(params.family) * fp + FQ_TOWER_OVERHEAD_NS;

        let g1 = (params.p_bits as f64) * G1_FP_MULS_PER_BIT * fp * G1_CAL;
        let comb_iters = params.p_bits.div_ceil(comb_width(params.p_bits)) as f64;
        let g1_fixed = comb_iters * COMB_FP_MULS_PER_ITER * fp * COMB_CAL;
        let g2 = g1 * G2_OVER_G1;
        let g2_fixed = g2 * G2_FIXED_OVER_G2;

        let loop_bits = miller_loop_bits(params.family, params.t_bits);
        let hard_chains = match params.family {
            Family::Bn | Family::Bls12 => 2.0,
            Family::Bls24 => 4.0,
        };
        let miller_fq = loop_bits * MILLER_FQ_MULS_PER_BIT;
        let fexp_fq =
            (params.t_bits as f64) * hard_chains * FEXP_CYCLO_FQ_MULS + FEXP_FIXED_FQ_MULS;
        let pairing = (miller_fq + fexp_fq) * fq * PAIRING_CAL;

        KernelCosts {
            fp_mul_ns: fp,
            fq_mul_ns: fq,
            g1_mul_ns: g1,
            g1_mul_fixed_ns: g1_fixed,
            g2_mul_ns: g2,
            g2_mul_fixed_ns: g2_fixed,
            msm256_ns: msm_ns(params, 256),
            msm1024_ns: msm_ns(params, 1024),
            msm4096_ns: msm_ns(params, 4096),
            pairing_ns: pairing,
            batch_verify_check_ns: Some(pairing * BATCH_CHECK_OVER_PAIRING),
        }
    }
}

// ---- minimal JSON field extraction (no serde in the workspace) ----
// The bench emission is machine-written with `"key": value` rows and no
// braces inside strings, which is all these helpers assume.

fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let after = &obj[obj.find(&pat)? + pat.len()..];
    let start = after.find('"')? + 1;
    let end = start + after[start..].find('"')?;
    Some(after[start..end].to_string())
}

fn json_num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let after = &obj[obj.find(&pat)? + pat.len()..];
    let end = after.find([',', '}', ']']).unwrap_or(after.len());
    after[..end].trim().parse().ok()
}

/// The bracketed contents of `"key": [ ... ]` (without the brackets).
fn json_array_block<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let after = &text[text.find(&pat)? + pat.len()..];
    let open = after.find('[')?;
    let mut depth = 0usize;
    for (i, b) in after.bytes().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&after[open + 1..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Top-level `{ ... }` objects inside an array block.
fn json_objects(block: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, b) in block.bytes().enumerate() {
        match b {
            b'{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&block[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_covers_all_table2_curves() {
        let m = CostModel::analytic();
        assert_eq!(m.curves().count(), 7);
        for row in m.curves() {
            for k in Kernel::ALL {
                let c = row.costs.get(k).unwrap_or(0.0);
                assert!(c > 0.0, "{} {:?} must be positive", row.curve, k);
            }
        }
    }

    #[test]
    fn analytic_kernel_ordering_is_sane() {
        let m = CostModel::analytic();
        for row in m.curves() {
            let c = &row.costs;
            assert!(c.fp_mul_ns < c.fq_mul_ns);
            assert!(c.fq_mul_ns < c.g1_mul_fixed_ns);
            assert!(c.g1_mul_fixed_ns < c.g1_mul_ns);
            assert!(c.g1_mul_ns < c.pairing_ns);
            assert!(c.pairing_ns < c.msm256_ns);
            assert!(c.msm256_ns < c.msm1024_ns);
            assert!(c.msm1024_ns < c.msm4096_ns);
        }
    }

    #[test]
    fn loader_rejects_unknown_schema() {
        let err =
            CostModel::from_bench_json("{\"schema\": \"finesse-bench-fieldops/v3\"}").unwrap_err();
        assert!(matches!(err, CostModelError::SchemaVersion { .. }));
        let err = CostModel::from_bench_json("{}").unwrap_err();
        assert!(matches!(err, CostModelError::SchemaVersion { .. }));
    }

    #[test]
    fn loader_requires_curve_rows() {
        // Every supported schema version shares the curve-row contract.
        for schema in ["v4", "v5", "v6"] {
            let err = CostModel::from_bench_json(&format!(
                "{{\"schema\": \"finesse-bench-fieldops/{schema}\", \"curves\": []}}"
            ))
            .unwrap_err();
            assert_eq!(err, CostModelError::NoCurves);
        }
    }

    #[test]
    fn rank_sorts_ascending() {
        let m = CostModel::analytic();
        let ranked = m.rank(Kernel::Pairing);
        assert_eq!(ranked.len(), 7);
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(ranked[0].0, "BN254N");
    }
}
