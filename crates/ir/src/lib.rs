//! # finesse-ir
//!
//! The abstraction system at the heart of Finesse (paper §3.2): a
//! hierarchical SSA [IR](hir) over algebraic values, [tower
//! shapes](shape) describing each curve's extension lattice, [operator
//! variants](variants) (Karatsuba/schoolbook/Chung–Hasan/Granger–Scott),
//! and the variant-driven [lowering](mod@lower) that turns high-level
//! programs into F_p-level SSA ([`FpProgram`]) ready for scheduling.

pub mod convert;
pub mod cost;
pub mod fpir;
pub mod hir;
pub mod lower;
pub mod shape;
pub mod variants;

pub use cost::{CostModel, CostModelError, CurveCostRow, Kernel, KernelCosts, Provenance};
pub use fpir::{FpId, FpOp, FpProgram, FpStats, OpClass};
pub use hir::{HirConst, HirError, HirInput, HirInst, HirOp, HirProgram, ValueId};
pub use lower::lower;
pub use shape::{LevelDesc, NonresForm, TowerShape};
pub use variants::{CycloVariant, MulVariant, SqrVariant, VariantConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use convert::{fpk_to_fps, fps_to_fpk, fps_to_fq, fq_to_canonical, fq_to_fps};
    use finesse_curves::Curve;
    use finesse_ff::Fpk;
    use std::sync::Arc;

    fn configs(shape: &TowerShape) -> Vec<VariantConfig> {
        vec![
            VariantConfig::all_karatsuba(shape),
            VariantConfig::all_schoolbook(shape),
            VariantConfig::manual(shape),
            VariantConfig::all_karatsuba(shape)
                .with_sqr(shape.k, SqrVariant::ViaMul)
                .with_cyclo(CycloVariant::PlainSqr),
        ]
    }

    /// Lowers a single top-level binary op and compares against tower
    /// arithmetic for every variant config.
    fn check_fpk_binop(
        curve_name: &str,
        build: impl Fn(&mut HirProgram, ValueId, ValueId, u8) -> ValueId,
        reference: impl Fn(&finesse_ff::TowerCtx, &Fpk, &Fpk) -> Fpk,
    ) {
        let curve = Curve::by_name(curve_name);
        let tower = curve.tower();
        let shape = TowerShape::for_curve(&curve);
        let k = shape.k;
        let mut hir = HirProgram::new();
        let a = hir.declare_input("a", k);
        let b = hir.declare_input("b", k);
        let r = build(&mut hir, a, b, k);
        hir.outputs.push(r);

        let va = tower.fpk_sample(11);
        let vb = tower.fpk_sample(22);
        let expected = reference(tower, &va, &vb);
        let inputs: Vec<_> = fpk_to_fps(&va).into_iter().chain(fpk_to_fps(&vb)).collect();
        for cfg in configs(&shape) {
            let fp = lower(&hir, &shape, &cfg).expect("lowering succeeds");
            fp.validate().unwrap();
            let out = fp.evaluate(curve.fp(), &inputs);
            let got = fps_to_fpk(tower, &out);
            assert_eq!(got, expected, "{curve_name} variant {cfg}");
        }
    }

    #[test]
    fn lowered_fpk_mul_matches_tower_k12() {
        check_fpk_binop(
            "BLS12-381",
            |h, a, b, k| h.push(HirOp::Mul(a, b), k),
            |t, a, b| t.fpk_mul(a, b),
        );
    }

    #[test]
    fn lowered_fpk_mul_matches_tower_k24() {
        check_fpk_binop(
            "BLS24-509",
            |h, a, b, k| h.push(HirOp::Mul(a, b), k),
            |t, a, b| t.fpk_mul(a, b),
        );
    }

    #[test]
    fn lowered_fpk_sqr_and_add_match_tower() {
        check_fpk_binop(
            "BLS12-381",
            |h, a, b, k| {
                let s = h.push(HirOp::Add(a, b), k);
                h.push(HirOp::Sqr(s), k)
            },
            |t, a, b| t.fpk_sqr(&t.fpk_add(a, b)),
        );
        check_fpk_binop(
            "BN254N",
            |h, a, b, k| {
                let s = h.push(HirOp::Sub(a, b), k);
                h.push(HirOp::Sqr(s), k)
            },
            |t, a, b| t.fpk_sqr(&t.fpk_sub(a, b)),
        );
    }

    #[test]
    fn lowered_inv_matches_tower() {
        check_fpk_binop(
            "BLS12-381",
            |h, a, b, k| {
                let m = h.push(HirOp::Mul(a, b), k);
                h.push(HirOp::Inv(m), k)
            },
            |t, a, b| t.fpk_inv(&t.fpk_mul(a, b)),
        );
    }

    #[test]
    fn lowered_frobenius_matches_tower() {
        for j in 1..=4u8 {
            check_fpk_binop(
                "BLS12-381",
                |h, a, b, k| {
                    let m = h.push(HirOp::Mul(a, b), k);
                    h.push(HirOp::Frob(m, j), k)
                },
                |t, a, b| t.fpk_frob(&t.fpk_mul(a, b), j as usize),
            );
        }
        check_fpk_binop(
            "BLS24-509",
            |h, a, b, k| {
                let m = h.push(HirOp::Mul(a, b), k);
                h.push(HirOp::Frob(m, 4), k)
            },
            |t, a, b| t.fpk_frob(&t.fpk_mul(a, b), 4),
        );
    }

    #[test]
    fn lowered_conj_matches_tower() {
        check_fpk_binop(
            "BN254N",
            |h, a, b, k| {
                let m = h.push(HirOp::Mul(a, b), k);
                h.push(HirOp::Conj(m), k)
            },
            |t, a, b| t.fpk_conj(&t.fpk_mul(a, b)),
        );
    }

    #[test]
    fn lowered_cyclo_sqr_matches_tower_on_cyclotomic_values() {
        for name in ["BLS12-381", "BLS24-509"] {
            let curve = Curve::by_name(name);
            let tower = curve.tower();
            let shape = TowerShape::for_curve(&curve);
            let k = shape.k;
            // Project a sample into the cyclotomic subgroup.
            let a = tower.fpk_sample(77);
            let inv = tower.fpk_inv(&a);
            let e1 = tower.fpk_mul(&tower.fpk_conj(&a), &inv);
            let j = if k == 12 { 2 } else { 4 };
            let g = tower.fpk_mul(&tower.fpk_frob(&e1, j), &e1);
            let expected = tower.fpk_sqr(&g);

            let mut hir = HirProgram::new();
            let x = hir.declare_input("g", k);
            let r = hir.push(HirOp::CycloSqr(x), k);
            hir.outputs.push(r);
            for cyclo in [CycloVariant::GrangerScott, CycloVariant::PlainSqr] {
                let cfg = VariantConfig::all_karatsuba(&shape).with_cyclo(cyclo);
                let fp = lower(&hir, &shape, &cfg).unwrap();
                let out = fp.evaluate(curve.fp(), &fpk_to_fps(&g));
                assert_eq!(fps_to_fpk(tower, &out), expected, "{name} {cyclo:?}");
            }
        }
    }

    #[test]
    fn lowered_fq_ops_match_tower() {
        let curve = Curve::by_name("BLS24-509");
        let tower = curve.tower();
        let shape = TowerShape::for_curve(&curve);
        let q = shape.qdeg();
        let mut hir = HirProgram::new();
        let a = hir.declare_input("a", q);
        let b = hir.declare_input("b", q);
        let m = hir.push(HirOp::Mul(a, b), q);
        let s = hir.push(HirOp::Sqr(m), q);
        let f = hir.push(HirOp::Frob(s, 1), q);
        let adj = hir.push(HirOp::Adj(f), q);
        let i = hir.push(HirOp::Inv(adj), q);
        let t3 = hir.push(HirOp::MulI(i, 12), q);
        hir.outputs.push(t3);

        let va = tower.fq_sample(3);
        let vb = tower.fq_sample(4);
        let expected = {
            let m = tower.fq_mul(&va, &vb);
            let s = tower.fq_sqr(&m);
            let f = tower.fq_frob(&s, 1);
            // Adj at the twist-field level multiplies by F_q's adjoined
            // generator (v for k=24): realised via fq_mul by the generator.
            let mut gen_flat = vec![tower.fp().zero(); q as usize];
            gen_flat[q as usize / 2] = tower.fp().one();
            let gen = fps_to_fq(tower, &gen_flat);
            let adj = tower.fq_mul(&f, &gen);
            let i = tower.fq_inv(&adj);
            tower.fq_mul_small(&i, 12)
        };
        let inputs: Vec<_> = fq_to_fps(&va).into_iter().chain(fq_to_fps(&vb)).collect();
        for cfg in configs(&shape) {
            let fp = lower(&hir, &shape, &cfg).unwrap();
            let out = fp.evaluate(curve.fp(), &inputs);
            assert_eq!(fps_to_fq(tower, &out), expected, "variant {cfg}");
        }
    }

    #[test]
    fn pack_assembles_sparse_values() {
        let curve = Curve::by_name("BLS12-381");
        let tower = curve.tower();
        let shape = TowerShape::for_curve(&curve);
        let q = shape.qdeg();
        let mut hir = HirProgram::new();
        let c0 = hir.declare_input("c0", q);
        let c1 = hir.declare_input("c1", q);
        let zero = hir.add_constant("zero", q, vec![finesse_ff::BigUint::zero(); q as usize]);
        let packed = hir.push(
            HirOp::Pack {
                parts: vec![c0, c1, zero, zero, zero, zero],
            },
            shape.k,
        );
        let sq = hir.push(HirOp::Sqr(packed), shape.k);
        hir.outputs.push(sq);

        let v0 = tower.fq_sample(1);
        let v1 = tower.fq_sample(2);
        let sparse =
            tower.fpk_from_sparse([Some(v0.clone()), Some(v1.clone()), None, None, None, None]);
        let expected = tower.fpk_sqr(&sparse);
        let inputs: Vec<_> = fq_to_fps(&v0).into_iter().chain(fq_to_fps(&v1)).collect();
        let cfg = VariantConfig::all_karatsuba(&shape);
        let fp = lower(&hir, &shape, &cfg).unwrap();
        let out = fp.evaluate(curve.fp(), &inputs);
        assert_eq!(fps_to_fpk(tower, &out), expected);
    }

    /// Lowers `MulSparse` for a given sparsity pattern and compares against
    /// the tower's dense product with the same structural zeros.
    fn check_mul_sparse(name: &str, positions: &[usize]) {
        let curve = Curve::by_name(name);
        let tower = curve.tower();
        let shape = TowerShape::for_curve(&curve);
        let k = shape.k;
        let q = shape.qdeg();
        let mut hir = HirProgram::new();
        let a = hir.declare_input("a", k);
        let coeffs: Vec<ValueId> = (0..positions.len())
            .map(|i| hir.declare_input(&format!("c{i}"), q))
            .collect();
        let mut parts: Vec<Option<ValueId>> = vec![None; 6];
        for (i, &pos) in positions.iter().enumerate() {
            parts[pos] = Some(coeffs[i]);
        }
        let r = hir.push(HirOp::MulSparse { a, parts }, k);
        hir.outputs.push(r);

        let va = tower.fpk_sample(9);
        let vc: Vec<_> = (0..positions.len() as u64)
            .map(|i| tower.fq_sample(50 + i))
            .collect();
        let mut sparse = [None, None, None, None, None, None];
        for (i, &pos) in positions.iter().enumerate() {
            sparse[pos] = Some(vc[i].clone());
        }
        let expected = tower.fpk_mul(&va, &tower.fpk_from_sparse(sparse));
        let inputs: Vec<_> = fpk_to_fps(&va)
            .into_iter()
            .chain(vc.iter().flat_map(fq_to_fps))
            .collect();
        for cfg in configs(&shape) {
            let fp = lower(&hir, &shape, &cfg).expect("lowering succeeds");
            fp.validate().unwrap();
            let out = fp.evaluate(curve.fp(), &inputs);
            assert_eq!(
                fps_to_fpk(tower, &out),
                expected,
                "{name} {positions:?} variant {cfg}"
            );
        }
    }

    #[test]
    fn lowered_mul_sparse_matches_tower_both_twists() {
        for name in ["BN254N", "BLS12-381", "BLS24-509"] {
            // D-twist line shape (w⁰, w¹, w³) and M-twist shape (w⁰, w², w³).
            check_mul_sparse(name, &[0, 1, 3]);
            check_mul_sparse(name, &[0, 2, 3]);
        }
    }

    #[test]
    fn lowered_mul_sparse_dense_fallback_matches_tower() {
        // Not a Miller-line pattern: exercises the densifying fallback.
        check_mul_sparse("BLS12-381", &[1, 4, 5]);
    }

    #[test]
    fn mul_sparse_line_costs_13_fq_muls() {
        // The point of the dedicated schedule: a D-twist line multiplication
        // costs 13 level-q muls, not the dense 18 (3×6 Karatsuba).
        let curve = Curve::by_name("BLS12-381");
        let shape = TowerShape::for_curve(&curve);
        let q = shape.qdeg();
        let mut hir = HirProgram::new();
        let a = hir.declare_input("a", 12);
        let c0 = hir.declare_input("c0", q);
        let c1 = hir.declare_input("c1", q);
        let c3 = hir.declare_input("c3", q);
        let r = hir.push(
            HirOp::MulSparse {
                a,
                parts: vec![Some(c0), Some(c1), None, Some(c3), None, None],
            },
            12,
        );
        hir.outputs.push(r);
        let sparse = lower(&hir, &shape, &VariantConfig::all_karatsuba(&shape)).unwrap();
        // 13 Fq muls × 3 base muls each (Karatsuba Fp2) = 39 < 54 dense.
        assert_eq!(sparse.stats().mul, 39);
    }

    #[test]
    fn karatsuba_and_schoolbook_mul_counts() {
        // Table 3's headline costs: M12 = 54 base muls all-Karatsuba
        // (3·6·3) vs 144 all-schoolbook (4·9·4).
        let curve = Curve::by_name("BLS12-381");
        let shape = TowerShape::for_curve(&curve);
        let mut hir = HirProgram::new();
        let a = hir.declare_input("a", 12);
        let b = hir.declare_input("b", 12);
        let m = hir.push(HirOp::Mul(a, b), 12);
        hir.outputs.push(m);
        let kara = lower(&hir, &shape, &VariantConfig::all_karatsuba(&shape)).unwrap();
        assert_eq!(kara.stats().mul, 54);
        let school = lower(&hir, &shape, &VariantConfig::all_schoolbook(&shape)).unwrap();
        assert_eq!(school.stats().mul, 144);
        // And Karatsuba pays in linear ops.
        assert!(kara.stats().linear > school.stats().linear);
    }

    #[test]
    fn constants_are_shared_across_uses() {
        let curve = Curve::by_name("BLS12-381");
        let tower = curve.tower();
        let shape = TowerShape::for_curve(&curve);
        let q = shape.qdeg();
        let mut hir = HirProgram::new();
        let a = hir.declare_input("a", q);
        let c = hir.add_constant("xi", q, fq_to_canonical(tower.xi()));
        let m1 = hir.push(HirOp::Mul(a, c), q);
        let c2 = hir.add_constant("xi2", q, fq_to_canonical(tower.xi()));
        let m2 = hir.push(HirOp::Mul(m1, c2), q);
        hir.outputs.push(m2);
        assert_eq!(hir.constants.len(), 1, "HIR constant table deduplicates");
        let fp = lower(&hir, &shape, &VariantConfig::all_karatsuba(&shape)).unwrap();
        // Lowered constant table contains each distinct Fp value once.
        let mut seen = std::collections::HashSet::new();
        for c in &fp.constants {
            assert!(seen.insert(c.to_hex()), "duplicate lowered constant");
        }
    }

    #[test]
    fn lowering_is_deterministic() {
        let curve = Curve::by_name("BN254N");
        let shape = TowerShape::for_curve(&curve);
        let mut hir = HirProgram::new();
        let a = hir.declare_input("a", 12);
        let b = hir.declare_input("b", 12);
        let m = hir.push(HirOp::Mul(a, b), 12);
        hir.outputs.push(m);
        let cfg = VariantConfig::manual(&shape);
        let p1 = lower(&hir, &shape, &cfg).unwrap();
        let p2 = lower(&hir, &shape, &cfg).unwrap();
        assert_eq!(p1.insts, p2.insts);
    }

    #[test]
    fn shape_and_programs_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TowerShape>();
        assert_send_sync::<Arc<FpProgram>>();
    }
}
