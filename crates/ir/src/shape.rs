//! Tower shape descriptors: the extension lattice the lowering recursion
//! walks, with per-level non-residues and Frobenius constant tables.
//!
//! The paper's lowering (Figure 4) maps an op at level d to ops at the
//! next level down the division lattice of k:
//!
//! * k = 12: `fp12 → fp6 → fp2 → fp` (quadratic / cubic / quadratic),
//! * k = 24: `fp24 → fp12 → fp4 → fp2 → fp` (quad / cubic / quad / quad).
//!
//! Each level records its non-residue in a *strength-reducible* form when
//! possible (small integers, `c0 + c1·u`, or "the parent's adjoined
//! generator"), so multiplications by non-residues lower to linear
//! operations instead of full multiplications — the `adj`/`B` costs of the
//! paper's Table 3.

use finesse_curves::Curve;
use finesse_ff::{BigUint, Fp};

/// Maximum Frobenius power with precomputed lowering constants.
pub const MAX_FROB: usize = 6;

/// How a level's non-residue multiplies into parent-level values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NonresForm {
    /// The parent is F_p and the non-residue is the small integer `c`
    /// (e.g. β = −1): multiplication is a negation / small chain.
    SmallFp(i64),
    /// The parent is a quadratic level with generator `u`, and the
    /// non-residue is `c0 + c1·u` with small coefficients (e.g. 1 + u).
    SimpleQuad {
        /// Constant coefficient.
        c0: i64,
        /// Generator coefficient.
        c1: i64,
    },
    /// The non-residue is exactly the parent level's adjoined generator
    /// (e.g. `w² = s`, `s³ = v`): multiplication is the parent's `adj`.
    ParentGenerator,
    /// Arbitrary parent-level constant (canonical flat coefficients).
    Generic(Vec<BigUint>),
}

/// One level of the tower.
#[derive(Clone, Debug)]
pub struct LevelDesc {
    /// Total extension degree over F_p.
    pub degree: u8,
    /// Extension arity over the parent (2 or 3).
    pub arity: u8,
    /// Parent degree (1 for the first level).
    pub parent: u8,
    /// The non-residue adjoined at this level.
    pub nonres: NonresForm,
    /// `g^(p^j − 1)` for this level's generator g, j = 0..=[`MAX_FROB`],
    /// as canonical parent-level flat coefficients.
    pub frob: Vec<Vec<BigUint>>,
    /// The square of [`LevelDesc::frob`] entries (needed by cubic-level
    /// Frobenius: the s² coefficient picks up `C²`).
    pub frob_sq: Vec<Vec<BigUint>>,
}

/// The full lattice for a curve's embedding degree.
#[derive(Clone, Debug)]
pub struct TowerShape {
    /// Embedding degree k.
    pub k: u8,
    /// Levels in ascending degree order.
    pub levels: Vec<LevelDesc>,
}

/// Interprets an F_p element as a small signed integer when possible.
fn fp_as_small(v: &Fp) -> Option<i64> {
    let n = v.to_biguint();
    if let Some(u) = n.to_u64() {
        if u <= 32 {
            return Some(u as i64);
        }
    }
    let p = v.ctx().modulus();
    if let Some(u) = p.checked_sub(&n).and_then(|d| d.to_u64()) {
        if u <= 32 && u > 0 {
            return Some(-(u as i64));
        }
    }
    None
}

impl TowerShape {
    /// Derives the shape (levels, non-residue forms, Frobenius constants)
    /// from a constructed curve.
    pub fn for_curve(curve: &Curve) -> TowerShape {
        let tower = curve.tower();
        let fpc = curve.fp();
        let flat = |xs: &[Fp]| -> Vec<BigUint> { xs.iter().map(Fp::to_biguint).collect() };
        let pair_flat = |x: &(Fp, Fp)| vec![x.0.to_biguint(), x.1.to_biguint()];

        // Level 2: u² = β.
        let beta = tower.beta();
        let l2_nonres = match fp_as_small(beta) {
            Some(c) => NonresForm::SmallFp(c),
            None => NonresForm::Generic(vec![beta.to_biguint()]),
        };
        let mut l2_frob = Vec::new();
        for j in 0..=MAX_FROB {
            l2_frob.push(vec![tower.u_frob_const(j).to_biguint()]);
        }
        let l2_frob_sq = l2_frob
            .iter()
            .map(|c| {
                let x = fpc.from_biguint(&c[0]);
                vec![x.square().to_biguint()]
            })
            .collect();
        let l2 = LevelDesc {
            degree: 2,
            arity: 2,
            parent: 1,
            nonres: l2_nonres,
            frob: l2_frob,
            frob_sq: l2_frob_sq,
        };

        // Helper: classify an Fp2 constant (c0, c1).
        let quad_form = |c: &(Fp, Fp)| -> NonresForm {
            match (fp_as_small(&c.0), fp_as_small(&c.1)) {
                (Some(c0), Some(c1)) => NonresForm::SimpleQuad { c0, c1 },
                _ => NonresForm::Generic(pair_flat(c)),
            }
        };

        let mut levels = vec![l2];

        if tower.k() == 12 {
            // Level 6: s³ = ξ ∈ F_p2.
            let xi = tower.xi();
            let xic = (xi.coeffs()[0].clone(), xi.coeffs()[1].clone());
            let mut frob = Vec::new();
            let mut frob_sq = Vec::new();
            for j in 0..=MAX_FROB {
                let wj = tower.w_frob_const(j);
                let c = tower.fq_sqr(wj); // ξ^((p^j−1)/3)
                frob.push(flat(c.coeffs()));
                frob_sq.push(flat(tower.fq_sqr(&c).coeffs()));
            }
            levels.push(LevelDesc {
                degree: 6,
                arity: 3,
                parent: 2,
                nonres: quad_form(&xic),
                frob,
                frob_sq,
            });
            // Level 12: w² = s.
            let mut frob = Vec::new();
            let mut frob_sq = Vec::new();
            for j in 0..=MAX_FROB {
                let wj = tower.w_frob_const(j); // ξ^((p^j−1)/6) ∈ F_p2 ⊂ F_p6
                let mut f = flat(wj.coeffs());
                f.resize(6, BigUint::zero());
                frob.push(f);
                let sq = tower.fq_sqr(wj);
                let mut f2 = flat(sq.coeffs());
                f2.resize(6, BigUint::zero());
                frob_sq.push(f2);
            }
            levels.push(LevelDesc {
                degree: 12,
                arity: 2,
                parent: 6,
                nonres: NonresForm::ParentGenerator,
                frob,
                frob_sq,
            });
        } else {
            // k = 24.
            // Level 4: v² = ξ₂ ∈ F_p2.
            let xi2 = tower.xi2().expect("k=24 towers have xi2").clone();
            let mut frob = Vec::new();
            let mut frob_sq = Vec::new();
            for j in 0..=MAX_FROB {
                let vj = tower.v_frob_const(j);
                frob.push(pair_flat(vj));
                frob_sq.push(pair_flat(&tower.fp2_pair_sqr(vj)));
            }
            levels.push(LevelDesc {
                degree: 4,
                arity: 2,
                parent: 2,
                nonres: quad_form(&xi2),
                frob,
                frob_sq,
            });
            // Level 12 (cubic): s³ = ξ ∈ F_p4.
            let xi = tower.xi();
            let xi_is_v = {
                let c = xi.coeffs();
                c[0].is_zero() && c[1].is_zero() && c[2].is_one() && c[3].is_zero()
            };
            let nonres = if xi_is_v {
                NonresForm::ParentGenerator
            } else {
                NonresForm::Generic(flat(xi.coeffs()))
            };
            let mut frob = Vec::new();
            let mut frob_sq = Vec::new();
            for j in 0..=MAX_FROB {
                let wj = tower.w_frob_const(j);
                let c = tower.fq_sqr(wj);
                frob.push(flat(c.coeffs()));
                frob_sq.push(flat(tower.fq_sqr(&c).coeffs()));
            }
            levels.push(LevelDesc {
                degree: 12,
                arity: 3,
                parent: 4,
                nonres,
                frob,
                frob_sq,
            });
            // Level 24: w² = s.
            let mut frob = Vec::new();
            let mut frob_sq = Vec::new();
            for j in 0..=MAX_FROB {
                let wj = tower.w_frob_const(j);
                let mut f = flat(wj.coeffs());
                f.resize(12, BigUint::zero());
                frob.push(f);
                let sq = tower.fq_sqr(wj);
                let mut f2 = flat(sq.coeffs());
                f2.resize(12, BigUint::zero());
                frob_sq.push(f2);
            }
            levels.push(LevelDesc {
                degree: 24,
                arity: 2,
                parent: 12,
                nonres: NonresForm::ParentGenerator,
                frob,
                frob_sq,
            });
        }

        TowerShape {
            k: tower.k() as u8,
            levels,
        }
    }

    /// The level descriptor for a given degree.
    ///
    /// # Panics
    ///
    /// Panics for degrees not in this tower's lattice.
    pub fn level(&self, degree: u8) -> &LevelDesc {
        self.levels
            .iter()
            .find(|l| l.degree == degree)
            .unwrap_or_else(|| panic!("degree {degree} not in tower lattice"))
    }

    /// All degrees in the lattice (ascending, excluding 1).
    pub fn degrees(&self) -> Vec<u8> {
        self.levels.iter().map(|l| l.degree).collect()
    }

    /// The twist-field degree k/6.
    pub fn qdeg(&self) -> u8 {
        self.k / 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_curves::Curve;

    #[test]
    fn bls12_shape_lattice() {
        let c = Curve::by_name("BLS12-381");
        let s = TowerShape::for_curve(&c);
        assert_eq!(s.k, 12);
        assert_eq!(s.degrees(), vec![2, 6, 12]);
        assert_eq!(s.level(6).arity, 3);
        assert_eq!(s.level(12).nonres, NonresForm::ParentGenerator);
        // β = −1 for BLS12-381.
        assert_eq!(s.level(2).nonres, NonresForm::SmallFp(-1));
        // ξ = 1 + u.
        assert_eq!(s.level(6).nonres, NonresForm::SimpleQuad { c0: 1, c1: 1 });
    }

    #[test]
    fn bls24_shape_lattice() {
        let c = Curve::by_name("BLS24-509");
        let s = TowerShape::for_curve(&c);
        assert_eq!(s.degrees(), vec![2, 4, 12, 24]);
        assert_eq!(s.level(12).arity, 3);
        assert_eq!(s.level(12).nonres, NonresForm::ParentGenerator);
        assert_eq!(s.level(4).nonres, NonresForm::SimpleQuad { c0: 1, c1: 1 });
    }

    #[test]
    fn frob_tables_have_full_range() {
        let c = Curve::by_name("BN254N");
        let s = TowerShape::for_curve(&c);
        for l in &s.levels {
            assert_eq!(l.frob.len(), MAX_FROB + 1);
            assert_eq!(l.frob_sq.len(), MAX_FROB + 1);
            for f in &l.frob {
                assert_eq!(f.len(), l.parent as usize);
            }
        }
        // j = 0 constants are all 1 (identity Frobenius).
        for l in &s.levels {
            assert!(l.frob[0][0].is_one());
            assert!(l.frob[0][1..].iter().all(|c| c.is_zero()));
        }
    }
}
