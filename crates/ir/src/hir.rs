//! The hierarchical SSA intermediate representation (paper §3.2, Table 4).
//!
//! Values are typed by their *level* — the extension degree over F_p
//! (1 = `fp`, d = `fpd`). Operations mirror Table 4 (`add`, `sub`, `muli`,
//! `mul`, `sqr`, `adj`, `conj`, `frob`) plus the additions needed by a
//! complete optimal-Ate program: `inv` (the hardware's `minv` unit),
//! `cyclo_sqr` (the cyclotomic-subfield squaring the paper's final
//! exponentiation relies on) and the structural, zero-cost `pack` that
//! assembles a level-k value from its `w`-power coefficients (how sparse
//! Miller lines enter the dense IR before constant-zero propagation
//! recovers their sparsity, §4.3).
//!
//! Programs are straight-line single-basic-block SSA: the optimal-Ate
//! algorithm has fixed loop bounds for a given curve, so CodeGen fully
//! unrolls (paper §3.5).

use finesse_ff::BigUint;
use std::fmt;

/// SSA value identifier: the index of its defining instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A high-level IR operation (Table 4 plus the documented extensions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HirOp {
    /// External input (ICV-converted at the ISA boundary).
    Input {
        /// Index into [`HirProgram::inputs`].
        slot: u32,
    },
    /// Constant-table reference.
    Const {
        /// Index into [`HirProgram::constants`].
        idx: u32,
    },
    /// Structural assembly of a level-`k` value from `k/6` level-`q`
    /// coefficients in `w`-power order. Zero-cost (resolved at lowering).
    Pack {
        /// The six coefficient values.
        parts: Vec<ValueId>,
    },
    /// Field addition.
    Add(ValueId, ValueId),
    /// Field subtraction.
    Sub(ValueId, ValueId),
    /// Field negation.
    Neg(ValueId),
    /// Scalar multiplication by a small non-negative integer (`muli`).
    MulI(ValueId, u64),
    /// Field multiplication. Operand levels may differ as long as one
    /// divides the other (Table 4's divisibility rule); the result level
    /// is the larger one.
    Mul(ValueId, ValueId),
    /// Multiplication of a dense level-k value by a *sparse* level-k value
    /// given as its `k/6` optional `w`-power coefficients (`None` =
    /// structurally zero, present entries are level-`k/6` values). This is
    /// the Miller-loop line multiplication: lowering emits the dedicated
    /// 13-`fq_mul` schedule for the two twist sparsity patterns (§4.3)
    /// instead of packing zeros into a dense 54-mul product.
    MulSparse {
        /// The dense operand.
        a: ValueId,
        /// Sparse `w`-power coefficients of the other operand.
        parts: Vec<Option<ValueId>>,
    },
    /// Field squaring.
    Sqr(ValueId),
    /// Cyclotomic squaring (top level only, cyclotomic-subgroup values).
    CycloSqr(ValueId),
    /// Multiplication by the adjoined element of this value's level.
    Adj(ValueId),
    /// Conjugation with respect to this (even-arity) level's adjunction.
    Conj(ValueId),
    /// Frobenius endomorphism `x ↦ x^(p^j)`.
    Frob(ValueId, u8),
    /// Field inversion.
    Inv(ValueId),
}

impl HirOp {
    /// Operand values read by this op.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            HirOp::Input { .. } | HirOp::Const { .. } => Vec::new(),
            HirOp::Pack { parts } => parts.clone(),
            HirOp::MulSparse { a, parts } => {
                let mut ops = vec![*a];
                ops.extend(parts.iter().flatten().copied());
                ops
            }
            HirOp::Add(a, b) | HirOp::Sub(a, b) | HirOp::Mul(a, b) => vec![*a, *b],
            HirOp::Neg(a)
            | HirOp::MulI(a, _)
            | HirOp::Sqr(a)
            | HirOp::CycloSqr(a)
            | HirOp::Adj(a)
            | HirOp::Conj(a)
            | HirOp::Frob(a, _)
            | HirOp::Inv(a) => vec![*a],
        }
    }
}

/// An instruction: an op plus the extension level of its result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HirInst {
    /// The operation.
    pub op: HirOp,
    /// Extension degree of the result over F_p (1, 2, 4, 12 or 24).
    pub level: u8,
}

/// A declared external input.
#[derive(Clone, Debug)]
pub struct HirInput {
    /// Human-readable name (`"P.x"`, `"Q.y"`, ...).
    pub name: String,
    /// Extension level.
    pub level: u8,
}

/// A constant: canonical (non-Montgomery) base-field coefficients in tower
/// order, `level` entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HirConst {
    /// Debug label (`"b_twist"`, `"frob_c"`, ...).
    pub label: String,
    /// Extension level.
    pub level: u8,
    /// Canonical coefficients, length = level.
    pub coeffs: Vec<BigUint>,
}

/// A straight-line SSA program over algebraic values.
#[derive(Clone, Debug, Default)]
pub struct HirProgram {
    /// Instructions; `ValueId(i)` is defined by `insts[i]`.
    pub insts: Vec<HirInst>,
    /// Declared inputs (referenced by `Input { slot }`).
    pub inputs: Vec<HirInput>,
    /// Constant table.
    pub constants: Vec<HirConst>,
    /// Program outputs.
    pub outputs: Vec<ValueId>,
}

/// Error from [`HirProgram::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HirError {
    /// An operand references a not-yet-defined value (violates SSA order).
    UseBeforeDef {
        /// The offending instruction index.
        at: u32,
    },
    /// Operand levels violate the divisibility rule.
    LevelMismatch {
        /// The offending instruction index.
        at: u32,
    },
    /// An `Input`/`Const` slot index is out of range.
    BadSlot {
        /// The offending instruction index.
        at: u32,
    },
}

impl fmt::Display for HirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HirError::UseBeforeDef { at } => write!(f, "instruction {at} uses an undefined value"),
            HirError::LevelMismatch { at } => {
                write!(f, "instruction {at} violates level divisibility")
            }
            HirError::BadSlot { at } => {
                write!(f, "instruction {at} references a bad input/const slot")
            }
        }
    }
}

impl std::error::Error for HirError {}

impl HirProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction, returning its SSA value.
    pub fn push(&mut self, op: HirOp, level: u8) -> ValueId {
        let id = ValueId(self.insts.len() as u32);
        self.insts.push(HirInst { op, level });
        id
    }

    /// Declares an input of the given level.
    pub fn declare_input(&mut self, name: &str, level: u8) -> ValueId {
        let slot = self.inputs.len() as u32;
        self.inputs.push(HirInput {
            name: name.to_owned(),
            level,
        });
        self.push(HirOp::Input { slot }, level)
    }

    /// Adds (or reuses) a constant and returns its value.
    pub fn add_constant(&mut self, label: &str, level: u8, coeffs: Vec<BigUint>) -> ValueId {
        // Dedup by (level, coeffs) — constant tables stay small (paper
        // §3.2, "constants fit in a small table").
        if let Some((idx, _)) = self
            .constants
            .iter()
            .enumerate()
            .find(|(_, c)| c.level == level && c.coeffs == coeffs)
        {
            return self.push(HirOp::Const { idx: idx as u32 }, level);
        }
        let idx = self.constants.len() as u32;
        self.constants.push(HirConst {
            label: label.to_owned(),
            level,
            coeffs,
        });
        self.push(HirOp::Const { idx }, level)
    }

    /// The level of a value.
    pub fn level_of(&self, v: ValueId) -> u8 {
        self.insts[v.0 as usize].level
    }

    /// Counts instructions per level (reporting/diagnostics).
    pub fn count_by_level(&self) -> std::collections::BTreeMap<u8, usize> {
        let mut map = std::collections::BTreeMap::new();
        for inst in &self.insts {
            *map.entry(inst.level).or_insert(0) += 1;
        }
        map
    }

    /// Validates SSA ordering, level rules and slot references.
    ///
    /// # Errors
    ///
    /// Returns the first [`HirError`] encountered in program order.
    pub fn validate(&self) -> Result<(), HirError> {
        for (i, inst) in self.insts.iter().enumerate() {
            let at = i as u32;
            for op in inst.op.operands() {
                if op.0 >= at {
                    return Err(HirError::UseBeforeDef { at });
                }
            }
            match &inst.op {
                HirOp::Input { slot } => {
                    if *slot as usize >= self.inputs.len() {
                        return Err(HirError::BadSlot { at });
                    }
                }
                HirOp::Const { idx } => {
                    if *idx as usize >= self.constants.len() {
                        return Err(HirError::BadSlot { at });
                    }
                }
                HirOp::Add(a, b) | HirOp::Sub(a, b) => {
                    if self.level_of(*a) != inst.level || self.level_of(*b) != inst.level {
                        return Err(HirError::LevelMismatch { at });
                    }
                }
                HirOp::Mul(a, b) => {
                    let (la, lb) = (self.level_of(*a), self.level_of(*b));
                    let (hi, lo) = if la >= lb { (la, lb) } else { (lb, la) };
                    if hi != inst.level || hi % lo != 0 {
                        return Err(HirError::LevelMismatch { at });
                    }
                }
                HirOp::Pack { parts } => {
                    if parts.len() != 6 {
                        return Err(HirError::LevelMismatch { at });
                    }
                    for p in parts {
                        if self.level_of(*p) != inst.level / 6 {
                            return Err(HirError::LevelMismatch { at });
                        }
                    }
                }
                HirOp::MulSparse { a, parts } => {
                    if self.level_of(*a) != inst.level || parts.len() != 6 {
                        return Err(HirError::LevelMismatch { at });
                    }
                    for p in parts.iter().flatten() {
                        if self.level_of(*p) != inst.level / 6 {
                            return Err(HirError::LevelMismatch { at });
                        }
                    }
                }
                HirOp::Neg(a)
                | HirOp::MulI(a, _)
                | HirOp::Sqr(a)
                | HirOp::CycloSqr(a)
                | HirOp::Adj(a)
                | HirOp::Conj(a)
                | HirOp::Frob(a, _)
                | HirOp::Inv(a) => {
                    if self.level_of(*a) != inst.level {
                        return Err(HirError::LevelMismatch { at });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_small_program() {
        let mut p = HirProgram::new();
        let a = p.declare_input("a", 2);
        let b = p.declare_input("b", 2);
        let s = p.push(HirOp::Add(a, b), 2);
        let m = p.push(HirOp::Mul(s, s), 2);
        p.outputs.push(m);
        assert!(p.validate().is_ok());
        assert_eq!(p.count_by_level()[&2], 4);
    }

    #[test]
    fn validate_rejects_level_mismatch() {
        let mut p = HirProgram::new();
        let a = p.declare_input("a", 2);
        let b = p.declare_input("b", 4);
        p.push(HirOp::Add(a, b), 2);
        assert!(matches!(p.validate(), Err(HirError::LevelMismatch { .. })));
    }

    #[test]
    fn mixed_level_mul_obeys_divisibility() {
        let mut p = HirProgram::new();
        let a = p.declare_input("a", 4);
        let s = p.declare_input("s", 1);
        p.push(HirOp::Mul(a, s), 4);
        assert!(p.validate().is_ok());
        // 4 × 3 is not allowed
        let mut q = HirProgram::new();
        let a = q.declare_input("a", 4);
        let b = q.declare_input("b", 3);
        q.push(HirOp::Mul(a, b), 4);
        assert!(matches!(q.validate(), Err(HirError::LevelMismatch { .. })));
    }

    #[test]
    fn mul_sparse_validates_levels() {
        let mut p = HirProgram::new();
        let a = p.declare_input("a", 12);
        let c0 = p.declare_input("c0", 2);
        let c1 = p.declare_input("c1", 2);
        let c3 = p.declare_input("c3", 2);
        p.push(
            HirOp::MulSparse {
                a,
                parts: vec![Some(c0), Some(c1), None, Some(c3), None, None],
            },
            12,
        );
        assert!(p.validate().is_ok());
        // A present coefficient at the wrong level is rejected.
        let mut q = HirProgram::new();
        let a = q.declare_input("a", 12);
        let bad = q.declare_input("c", 4);
        q.push(
            HirOp::MulSparse {
                a,
                parts: vec![Some(bad), None, None, None, None, None],
            },
            12,
        );
        assert!(matches!(q.validate(), Err(HirError::LevelMismatch { .. })));
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut p = HirProgram::new();
        let one = vec![BigUint::one(), BigUint::zero()];
        let c1 = p.add_constant("one", 2, one.clone());
        let c2 = p.add_constant("one_again", 2, one);
        assert_eq!(p.constants.len(), 1);
        assert!(c1 != c2, "distinct SSA values referencing one table slot");
    }
}
