//! Conversions between tower-arithmetic values ([`Fq`], [`Fpk`]) and the
//! flat base-field coordinate layout used by lowered programs.
//!
//! Flat layout convention (the lowering recursion's "internal order"):
//! a level-d value is the concatenation of its parent-level components, so
//! level-k values store the even `w`-power F_q coefficients first
//! (`w⁰ w² w⁴`), then the odd ones (`w¹ w³ w⁵`) — the quadratic-over-cubic
//! split of the tower.

use finesse_ff::{BigUint, Fp, FpCtx, Fpk, Fq, TowerCtx};
use std::sync::Arc;

/// Flattens an F_q element into base-field elements (tower order).
pub fn fq_to_fps(a: &Fq) -> Vec<Fp> {
    a.coeffs().to_vec()
}

/// Rebuilds an F_q element from flat base-field elements.
pub fn fps_to_fq(tower: &TowerCtx, fps: &[Fp]) -> Fq {
    assert_eq!(fps.len(), tower.qdeg(), "flat width must equal k/6");
    Fq::from_coeffs(fps.to_vec()).expect("length checked above")
}

/// Flattens an F_p^k element into internal order (even `w`-powers first).
pub fn fpk_to_fps(a: &Fpk) -> Vec<Fp> {
    let c = a.coeffs();
    let mut out = Vec::with_capacity(6 * c[0].coeffs().len());
    for m in [0usize, 2, 4, 1, 3, 5] {
        out.extend_from_slice(c[m].coeffs());
    }
    out
}

/// Rebuilds an F_p^k element from internal-order flat elements.
pub fn fps_to_fpk(tower: &TowerCtx, fps: &[Fp]) -> Fpk {
    let q = tower.qdeg();
    assert_eq!(fps.len(), 6 * q, "flat width must equal k");
    let chunk =
        |i: usize| Fq::from_coeffs(fps[i * q..(i + 1) * q].to_vec()).expect("chunks are k/6 wide");
    // internal [E0 E1 E2 O0 O1 O2] → w-powers [E0 O0 E1 O1 E2 O2].
    Fpk::from_coeffs(vec![
        chunk(0),
        chunk(3),
        chunk(1),
        chunk(4),
        chunk(2),
        chunk(5),
    ])
    .expect("exactly six chunks")
}

/// Canonical (non-Montgomery) flat coefficients of an F_q element — the
/// form stored in IR constant tables.
pub fn fq_to_canonical(a: &Fq) -> Vec<BigUint> {
    a.coeffs().iter().map(Fp::to_biguint).collect()
}

/// Builds flat [`Fp`] inputs from canonical values.
pub fn canonical_to_fps(ctx: &Arc<FpCtx>, vals: &[BigUint]) -> Vec<Fp> {
    vals.iter().map(|v| ctx.from_biguint(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_curves::Curve;

    #[test]
    fn fpk_roundtrip_both_towers() {
        for name in ["BLS12-381", "BLS24-509"] {
            let c = Curve::by_name(name);
            let t = c.tower();
            let a = t.fpk_sample(5);
            let flat = fpk_to_fps(&a);
            assert_eq!(flat.len(), t.k());
            assert_eq!(fps_to_fpk(t, &flat), a, "{name}");
        }
    }

    #[test]
    fn fq_roundtrip() {
        let c = Curve::by_name("BLS24-509");
        let t = c.tower();
        let a = t.fq_sample(9);
        assert_eq!(fps_to_fq(t, &fq_to_fps(&a)), a);
    }
}
