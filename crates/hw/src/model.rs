//! The parameterized hardware pipeline model (paper §3.2–3.3).
//!
//! A [`HwModel`] captures everything the compiler's scheduler and the
//! cycle-accurate simulator need to know about a core: unit latencies
//! (Long `mmul`, Short linear units, the iterative `minv`), issue shape
//! (single-issue or VLIW), register-bank structure and port limits, and
//! whether write-back ring buffers absorb port conflicts (the HW1/HW2
//! distinction of Table 7).

use std::fmt;

/// Hardware pipeline parameters for one processing core.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HwModel {
    /// Descriptive name (shown in experiment tables).
    pub name: String,
    /// `mmul` pipeline depth = Long instruction latency in cycles.
    pub long_lat: u32,
    /// Linear-unit latency = Short instruction latency in cycles.
    pub short_lat: u32,
    /// Iterative `minv` latency in cycles (defaults to `2·log p + 32`).
    pub inv_lat: u32,
    /// Operations per wide instruction (1 = single issue).
    pub issue_width: u8,
    /// Number of Short (linear) units.
    pub n_linear_units: u8,
    /// Number of `mmul` units (architectural constraint: exactly 1).
    pub n_mul_units: u8,
    /// Number of register banks.
    pub n_banks: u8,
    /// Read ports per bank per cycle.
    pub reads_per_bank: u8,
    /// Write ports per bank per cycle.
    pub writes_per_bank: u8,
    /// Write-back ring buffer present (absorbs write-port conflicts).
    pub wb_fifo: bool,
    /// Register quota per bank.
    pub reg_quota: u16,
}

/// Error from [`HwModel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwModelError {
    /// The paper's architecture allows at most one `mmul` per core.
    TooManyMulUnits,
    /// VLIW machines need at least as many banks as the issue width.
    TooFewBanks,
    /// Banks must offer at least 2 reads + 1 write per cycle.
    TooFewPorts,
    /// VLIW (width ≥ 2) requires the write-back ring buffer.
    MissingFifo,
    /// Latencies must be non-zero and Long ≥ Short.
    BadLatencies,
}

impl fmt::Display for HwModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HwModelError::TooManyMulUnits => "at most 1 mmul unit per core",
            HwModelError::TooFewBanks => "need at least as many register banks as issue width",
            HwModelError::TooFewPorts => "banks must provide >= 2 reads and >= 1 write per cycle",
            HwModelError::MissingFifo => "VLIW configurations require write-back ring buffers",
            HwModelError::BadLatencies => "latencies must satisfy Long >= Short >= 1",
        };
        f.write_str(s)
    }
}

impl std::error::Error for HwModelError {}

impl HwModel {
    /// The paper's default evaluation model: Long = 38, Short = 8,
    /// single issue, one bank with 2R1W, no FIFO (HW1).
    pub fn paper_default() -> Self {
        HwModel {
            name: "L38/S8 single-issue".into(),
            long_lat: 38,
            short_lat: 8,
            inv_lat: 560,
            issue_width: 1,
            n_linear_units: 1,
            n_mul_units: 1,
            n_banks: 1,
            reads_per_bank: 2,
            writes_per_bank: 1,
            wb_fifo: false,
            reg_quota: 2048,
        }
    }

    /// Single-issue model with explicit Long/Short latencies.
    pub fn single_issue(long_lat: u32, short_lat: u32) -> Self {
        HwModel {
            name: format!("L{long_lat}/S{short_lat} single-issue"),
            long_lat,
            short_lat,
            ..Self::paper_default()
        }
    }

    /// VLIW model: one `mmul` slot plus `n_linear` linear slots, one bank
    /// per slot, write-back ring buffers enabled (the paper's §3.2
    /// architectural constraint for width ≥ 2).
    pub fn vliw(n_linear: u8, long_lat: u32, short_lat: u32) -> Self {
        let width = n_linear + 1;
        HwModel {
            name: format!("L{long_lat}/S{short_lat} VLIW x{n_linear}lin"),
            long_lat,
            short_lat,
            issue_width: width,
            n_linear_units: n_linear,
            n_banks: width,
            wb_fifo: true,
            reg_quota: 1024,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with the write-back FIFO enabled (HW2 of Table 7).
    pub fn with_fifo(mut self) -> Self {
        self.wb_fifo = true;
        self.name = format!("{} +fifo", self.name);
        self
    }

    /// Returns a copy with a different `mmul` pipeline depth (the ALU
    /// family axis of Figure 11).
    pub fn with_long_latency(mut self, long_lat: u32) -> Self {
        self.long_lat = long_lat;
        self.name = format!(
            "L{long_lat}/S{} {}",
            self.short_lat,
            if self.issue_width == 1 {
                "single-issue"
            } else {
                "VLIW"
            }
        );
        self
    }

    /// Sets the iterative inversion latency from the field bit width.
    pub fn with_inv_latency_for_bits(mut self, bits: usize) -> Self {
        self.inv_lat = 2 * bits as u32 + 32;
        self
    }

    /// Checks the architectural constraints asserted by the paper.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`HwModelError`].
    pub fn validate(&self) -> Result<(), HwModelError> {
        if self.n_mul_units != 1 {
            return Err(HwModelError::TooManyMulUnits);
        }
        if self.n_banks < self.issue_width {
            return Err(HwModelError::TooFewBanks);
        }
        if self.reads_per_bank < 2 || self.writes_per_bank < 1 {
            return Err(HwModelError::TooFewPorts);
        }
        if self.issue_width >= 2 && !self.wb_fifo {
            return Err(HwModelError::MissingFifo);
        }
        if self.short_lat == 0 || self.long_lat < self.short_lat {
            return Err(HwModelError::BadLatencies);
        }
        Ok(())
    }

    /// Latency of an instruction class in cycles.
    pub fn latency_of(&self, op: finesse_isa::Opcode) -> u32 {
        use finesse_isa::Opcode;
        match op {
            Opcode::Mul | Opcode::Sqr => self.long_lat,
            Opcode::Inv => self.inv_lat,
            Opcode::Nop => 1,
            Opcode::Cvt | Opcode::Icv => self.long_lat, // Montgomery conversions run on mmul
            _ => self.short_lat,
        }
    }

    /// The issue-slot affinity threshold (§3.5): the fraction of slots in
    /// each `(Long − Short)`-cycle window given Long affinity.
    pub fn affinity_period(&self) -> u32 {
        (self.long_lat - self.short_lat).max(1)
    }
}

impl fmt::Display for HwModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (L={}, S={}, width={}, banks={}, {}R{}W{})",
            self.name,
            self.long_lat,
            self.short_lat,
            self.issue_width,
            self.n_banks,
            self.reads_per_bank,
            self.writes_per_bank,
            if self.wb_fifo { ", fifo" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_isa::Opcode;

    #[test]
    fn paper_default_is_valid() {
        let m = HwModel::paper_default();
        assert!(m.validate().is_ok());
        assert_eq!(m.latency_of(Opcode::Mul), 38);
        assert_eq!(m.latency_of(Opcode::Add), 8);
        assert_eq!(m.affinity_period(), 30);
    }

    #[test]
    fn vliw_presets_are_valid() {
        for n in [2u8, 4, 6] {
            let m = HwModel::vliw(n, 8, 2);
            assert!(m.validate().is_ok(), "{m}");
            assert_eq!(m.issue_width, n + 1);
            assert!(m.wb_fifo);
        }
    }

    #[test]
    fn constraints_are_enforced() {
        let mut m = HwModel::paper_default();
        m.n_mul_units = 2;
        assert_eq!(m.validate(), Err(HwModelError::TooManyMulUnits));

        let mut m = HwModel::vliw(2, 8, 2);
        m.wb_fifo = false;
        assert_eq!(m.validate(), Err(HwModelError::MissingFifo));

        let mut m = HwModel::paper_default();
        m.n_banks = 0;
        assert_eq!(m.validate(), Err(HwModelError::TooFewBanks));

        let mut m = HwModel::paper_default();
        m.long_lat = 4;
        assert_eq!(m.validate(), Err(HwModelError::BadLatencies));
    }

    #[test]
    fn inv_latency_tracks_bits() {
        let m = HwModel::paper_default().with_inv_latency_for_bits(254);
        assert_eq!(m.inv_lat, 540);
    }
}
