//! Analytical ASIC timing model (the EDA-feedback substitution for the
//! co-design loop of Figure 11).
//!
//! The `mmul` critical path shortens as the pipeline deepens, but
//! saturates: wire delay, clock overhead and the indivisible compressor
//! stage put a floor under the cycle time at the target node. The model is
//!
//! ```text
//! t_cycle(L) = max(t_floor, K(bits) / (L − L0))
//! ```
//!
//! with `K` growing logarithmically in the operand width (deeper
//! compressor trees) — calibrated so the paper's BN254N design meets
//! 769 MHz at depth 38 (Table 6) and ~270 MHz at depth 14 (Figure 11's
//! left edge), and saturates beyond depth ≈ 38 ("critical paths cease to
//! decrease"), which creates the interior optimum the co-design loop
//! finds.

/// Cycle-time floor at 40nm LP in nanoseconds (register + clocking
/// overhead).
const T_FLOOR_NS: f64 = 1.3;

/// Pipeline stages consumed by non-divisible logic.
const L0: f64 = 2.0;

/// Total combinational depth constant for 254-bit operands, ns.
const K_254_NS: f64 = 44.4;

/// Critical-path delay in ns for an `mmul` of the given pipeline depth
/// and operand width at 40nm LP.
pub fn critical_path_ns(pipeline_depth: u32, field_bits: u32) -> f64 {
    let k = K_254_NS * ((field_bits as f64).ln() / 254f64.ln());
    let depth = (pipeline_depth as f64 - L0).max(1.0);
    (k / depth).max(T_FLOOR_NS)
}

/// Achievable clock frequency in MHz.
pub fn frequency_mhz(pipeline_depth: u32, field_bits: u32) -> f64 {
    1000.0 / critical_path_ns(pipeline_depth, field_bits)
}

/// Latency of one pairing in microseconds given a cycle count.
pub fn latency_us(cycles: u64, pipeline_depth: u32, field_bits: u32) -> f64 {
    cycles as f64 * critical_path_ns(pipeline_depth, field_bits) / 1000.0
}

/// Throughput in operations/second for `cores` parallel cores.
pub fn throughput_ops(cycles: u64, pipeline_depth: u32, field_bits: u32, cores: u32) -> f64 {
    cores as f64 * frequency_mhz(pipeline_depth, field_bits) * 1.0e6 / cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_38_reaches_769_mhz() {
        let f = frequency_mhz(38, 254);
        assert!((f - 769.0).abs() < 25.0, "got {f:.0} MHz");
    }

    #[test]
    fn shallow_pipelines_are_slow() {
        let f = frequency_mhz(14, 254);
        assert!((260.0..330.0).contains(&f), "got {f:.0} MHz");
    }

    #[test]
    fn critical_path_saturates() {
        // Beyond the floor, extra stages stop helping (Figure 11).
        let c38 = critical_path_ns(38, 254);
        let c41 = critical_path_ns(41, 254);
        let c60 = critical_path_ns(60, 254);
        assert_eq!(c38, c41);
        assert_eq!(c41, c60);
        assert_eq!(c38, T_FLOOR_NS);
        // And is strictly decreasing before the floor.
        assert!(critical_path_ns(14, 254) > critical_path_ns(20, 254));
        assert!(critical_path_ns(20, 254) > critical_path_ns(26, 254));
    }

    #[test]
    fn wider_fields_are_slower_but_mildly() {
        let narrow = critical_path_ns(20, 254);
        let wide = critical_path_ns(20, 638);
        assert!(wide > narrow);
        assert!(
            wide / narrow < 1.35,
            "log-like growth, got {}",
            wide / narrow
        );
    }

    #[test]
    fn table6_operating_point() {
        // 63.6k cycles at depth 38 → ≈82.7 µs and ≈12.1 kops (Table 6).
        let lat = latency_us(63_607, 38, 254);
        assert!((lat - 82.7).abs() < 3.0, "latency {lat:.1} µs");
        let tp = throughput_ops(63_607, 38, 254, 1);
        assert!((tp - 12_100.0).abs() < 500.0, "throughput {tp:.0} ops");
        let tp8 = throughput_ops(63_607, 38, 254, 8);
        assert!(
            (tp8 - 96_700.0).abs() < 4_000.0,
            "8-core throughput {tp8:.0}"
        );
    }
}
