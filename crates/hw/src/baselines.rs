//! Published operating points of the prior-work baselines compared in
//! Table 6 — FlexiPair (Bag et al., IEEE TC 2022) and the Ikeda et al.
//! optimal-Ate ASIC engine (A-SSCC 2019) — together with the derived
//! throughput/efficiency metrics used for the headline ratios (34× / 6.2×
//! on FPGA, 3× / 3.2× on ASIC).
//!
//! These are *reported* numbers, not re-implementations: the paper also
//! compares against the published operating points.

/// FlexiPair on Virtex-7, BN256 (equivalent security to BN254).
#[derive(Clone, Copy, Debug)]
pub struct FpgaBaseline {
    /// Design name.
    pub name: &'static str,
    /// Clock frequency, MHz.
    pub frequency_mhz: f64,
    /// Cycles per pairing.
    pub cycles: u64,
    /// Latency per pairing, ms.
    pub latency_ms: f64,
    /// Occupied slices.
    pub slices: u32,
}

impl FpgaBaseline {
    /// Pairings per second.
    pub fn throughput_ops(&self) -> f64 {
        1000.0 / self.latency_ms
    }

    /// Pairings per second per slice.
    pub fn ops_per_slice(&self) -> f64 {
        self.throughput_ops() / self.slices as f64
    }
}

/// The FlexiPair operating point of Table 6.
pub const FLEXIPAIR: FpgaBaseline = FpgaBaseline {
    name: "FlexiPair (TC'22)",
    frequency_mhz: 188.5,
    cycles: 2_552_000,
    latency_ms: 14.14,
    slices: 2_506,
};

/// An ASIC baseline operating point.
#[derive(Clone, Copy, Debug)]
pub struct AsicBaseline {
    /// Design name.
    pub name: &'static str,
    /// Technology node description.
    pub node: &'static str,
    /// Clock frequency, MHz.
    pub frequency_mhz: f64,
    /// Cycles per pairing.
    pub cycles: u64,
    /// Latency per pairing at 1.1 V, µs.
    pub latency_us: f64,
    /// Die area, mm².
    pub area_mm2: f64,
}

impl AsicBaseline {
    /// Pairings per second.
    pub fn throughput_ops(&self) -> f64 {
        1.0e6 / self.latency_us
    }

    /// Pairings per second per mm², in kops/mm².
    pub fn kops_per_mm2(&self) -> f64 {
        self.throughput_ops() / 1000.0 / self.area_mm2
    }
}

/// The Ikeda et al. 65nm FDSOI engine of Table 6.
pub const IKEDA_ASSCC19: AsicBaseline = AsicBaseline {
    name: "Ikeda et al. (A-SSCC'19)",
    node: "65nm FDSOI",
    frequency_mhz: 250.0,
    cycles: 8_487,
    latency_us: 56.2,
    area_mm2: 12.8,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexipair_published_metrics() {
        assert!((FLEXIPAIR.throughput_ops() - 70.7).abs() < 0.3);
        assert!((FLEXIPAIR.ops_per_slice() - 0.028).abs() < 0.001);
    }

    #[test]
    fn ikeda_published_metrics() {
        assert!((IKEDA_ASSCC19.throughput_ops() / 1000.0 - 17.8).abs() < 0.1);
        assert!((IKEDA_ASSCC19.kops_per_mm2() - 1.39).abs() < 0.01);
    }
}
