//! Pairing security estimation against (Sex)TNFS attacks.
//!
//! The paper's Figure 8(b) evaluates curve security "using the method
//! proposed by Barbulescu and Duquesne". The full BD machinery optimises
//! NFS parameters per curve; here we substitute the standard L-notation
//! skeleton
//!
//! ```text
//! cost ≈ exp(c · (ln Q)^(1/3) · (ln ln Q)^(2/3)),   Q = p^k
//! ```
//!
//! with the constant `c` *fitted per curve family* to Barbulescu–
//! Duquesne's published security levels (the Table 2 column), linearly
//! interpolated in `k·log p` inside a family. This reproduces the known
//! anchors within a bit or two and extrapolates monotonically for custom
//! curves — exactly the role the estimate plays in the scalability
//! figure.

use finesse_curves::Family;

/// One fitted anchor: (k·log2(p), fitted c).
type Anchor = (f64, f64);

/// Computes `(ln Q)^(1/3) (ln ln Q)^(2/3) / ln 2` for Q = 2^bits — the
/// "base" bits of the L-notation cost.
fn l_base_bits(klogp: f64) -> f64 {
    let ln_q = klogp * std::f64::consts::LN_2;
    ln_q.powf(1.0 / 3.0) * ln_q.ln().powf(2.0 / 3.0) / std::f64::consts::LN_2
}

/// Fitted c anchors per family (derived from Table 2's BD levels).
fn anchors(family: Family) -> Vec<Anchor> {
    let table: &[(f64, u32)] = match family {
        Family::Bn => &[(3039.0, 100), (5535.0, 130), (7647.0, 153)],
        Family::Bls12 => &[(4569.0, 123), (5352.0, 130), (7656.0, 148)],
        Family::Bls24 => &[(12202.0, 192)],
    };
    table
        .iter()
        .map(|&(klogp, bits)| (klogp, bits as f64 / l_base_bits(klogp)))
        .collect()
}

/// Estimated security level in bits for a curve of the given family with
/// field size `k·log2 p` bits.
pub fn security_bits(family: Family, klogp: f64) -> f64 {
    let a = anchors(family);
    let c = if a.len() == 1 || klogp <= a[0].0 {
        a[0].1
    } else if klogp >= a[a.len() - 1].0 {
        a[a.len() - 1].1
    } else {
        // Piecewise-linear interpolation of c in k·log p.
        let mut c = a[0].1;
        for w in a.windows(2) {
            let ((x0, c0), (x1, c1)) = (w[0], w[1]);
            if klogp >= x0 && klogp <= x1 {
                let t = (klogp - x0) / (x1 - x0);
                c = c0 + t * (c1 - c0);
                break;
            }
        }
        c
    };
    c * l_base_bits(klogp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_curves::Curve;

    #[test]
    fn reproduces_table2_anchors() {
        let expect: &[(&str, f64)] = &[
            ("BN254N", 100.0),
            ("BN462", 130.0),
            ("BN638", 153.0),
            ("BLS12-381", 123.0),
            ("BLS12-446", 130.0),
            ("BLS12-638", 148.0),
            ("BLS24-509", 192.0),
        ];
        for &(name, bits) in expect {
            let c = Curve::by_name(name);
            let klogp = (c.k() * c.p().bits()) as f64;
            let est = security_bits(c.family(), klogp);
            assert!(
                (est - bits).abs() < 2.0,
                "{name}: estimated {est:.1} vs published {bits}"
            );
        }
    }

    #[test]
    fn monotone_in_field_size() {
        let mut last = 0.0;
        for klogp in [2000.0, 4000.0, 6000.0, 9000.0, 12000.0] {
            let s = security_bits(Family::Bls12, klogp);
            assert!(s > last, "security grows with k log p");
            last = s;
        }
    }

    #[test]
    fn interpolation_stays_within_anchor_range() {
        // Between BN462 and BN638 the estimate lies between their levels.
        let s = security_bits(Family::Bn, 6500.0);
        assert!(s > 130.0 && s < 153.0, "got {s:.1}");
    }
}
