//! Technology-node scaling in the style of Stillmaker & Baas
//! ("Scaling equations for the accurate prediction of CMOS device
//! performance from 180 nm to 7 nm", Integration 2017) — the paper's
//! reference \[30\] for normalising its 40nm results to competitors' nodes.
//!
//! Factors are expressed relative to the 40nm LP anchor and calibrated so
//! the paper's own Table 6 conversion reproduces exactly: 40nm → 65nm
//! multiplies delay by 1.82 (769 → 423 MHz) and area by 1.50
//! (8.00 → 12.0 mm²). Other nodes follow the published survey's shape.

use std::fmt;

/// A CMOS technology node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum TechNode {
    /// 130 nm.
    N130,
    /// 90 nm.
    N90,
    /// 65 nm (the Ikeda et al. baseline node).
    N65,
    /// 40 nm LP (the paper's implementation node).
    N40,
    /// 28 nm.
    N28,
    /// 16 nm.
    N16,
    /// 7 nm.
    N7,
}

impl TechNode {
    /// (delay, area) factors relative to 40nm LP.
    fn factors(self) -> (f64, f64) {
        match self {
            TechNode::N130 => (3.9, 6.2),
            TechNode::N90 => (2.6, 3.4),
            TechNode::N65 => (1.82, 1.50),
            TechNode::N40 => (1.0, 1.0),
            TechNode::N28 => (0.71, 0.55),
            TechNode::N16 => (0.45, 0.25),
            TechNode::N7 => (0.27, 0.08),
        }
    }

    /// Nominal feature size in nm.
    pub fn nanometers(self) -> u32 {
        match self {
            TechNode::N130 => 130,
            TechNode::N90 => 90,
            TechNode::N65 => 65,
            TechNode::N40 => 40,
            TechNode::N28 => 28,
            TechNode::N16 => 16,
            TechNode::N7 => 7,
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometers())
    }
}

/// Performance/area metrics of a design at some node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeMetrics {
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Latency of one operation in µs.
    pub latency_us: f64,
    /// Throughput in operations/second.
    pub throughput_ops: f64,
}

impl NodeMetrics {
    /// Throughput per area, ops/s/mm².
    pub fn ops_per_mm2(&self) -> f64 {
        self.throughput_ops / self.area_mm2
    }
}

/// Rescales metrics from one node to another (the Table 6 "equiv." row).
pub fn scale(m: &NodeMetrics, from: TechNode, to: TechNode) -> NodeMetrics {
    let (df, af) = from.factors();
    let (dt, at) = to.factors();
    let delay_ratio = dt / df;
    let area_ratio = at / af;
    NodeMetrics {
        frequency_mhz: m.frequency_mhz / delay_ratio,
        area_mm2: m.area_mm2 * area_ratio,
        latency_us: m.latency_us * delay_ratio,
        throughput_ops: m.throughput_ops / delay_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_forty_to_sixtyfive() {
        // Ours (8-core): 769 MHz / 8.00 mm² / 82.7 µs / 96.7 kops at 40nm
        // → 423 MHz / 12.0 mm² / 150.2 µs / 53.3 kops at 65nm-equivalent.
        let m = NodeMetrics {
            frequency_mhz: 769.0,
            area_mm2: 8.00,
            latency_us: 82.7,
            throughput_ops: 96_700.0,
        };
        let s = scale(&m, TechNode::N40, TechNode::N65);
        assert!(
            (s.frequency_mhz - 423.0).abs() < 5.0,
            "freq {:.0}",
            s.frequency_mhz
        );
        assert!((s.area_mm2 - 12.0).abs() < 0.1, "area {:.2}", s.area_mm2);
        assert!(
            (s.latency_us - 150.2).abs() < 1.5,
            "lat {:.1}",
            s.latency_us
        );
        assert!(
            (s.throughput_ops - 53_300.0).abs() < 800.0,
            "tp {:.0}",
            s.throughput_ops
        );
        // Area efficiency lands at the published 4.44 kops/mm².
        assert!((s.ops_per_mm2() / 1000.0 - 4.44).abs() < 0.1);
    }

    #[test]
    fn scaling_roundtrips() {
        let m = NodeMetrics {
            frequency_mhz: 500.0,
            area_mm2: 3.0,
            latency_us: 10.0,
            throughput_ops: 1e5,
        };
        let back = scale(
            &scale(&m, TechNode::N40, TechNode::N7),
            TechNode::N7,
            TechNode::N40,
        );
        assert!((back.frequency_mhz - m.frequency_mhz).abs() < 1e-9);
        assert!((back.area_mm2 - m.area_mm2).abs() < 1e-9);
    }

    #[test]
    fn newer_nodes_are_smaller_and_faster() {
        let m = NodeMetrics {
            frequency_mhz: 500.0,
            area_mm2: 3.0,
            latency_us: 10.0,
            throughput_ops: 1e5,
        };
        let s = scale(&m, TechNode::N40, TechNode::N16);
        assert!(s.frequency_mhz > m.frequency_mhz);
        assert!(s.area_mm2 < m.area_mm2);
    }
}
