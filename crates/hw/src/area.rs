//! Analytical ASIC area model, calibrated to the paper's 40nm LP silicon
//! (Figure 6 breakdown, Table 6 totals, Figure 12 floorplan summary).
//!
//! This is the substitution for commercial EDA synthesis:
//! the co-design loop only consumes scalar area feedback, so a calibrated
//! analytical model exercises the same code path. Structure:
//!
//! * `mmul` — hierarchical Karatsuba–Wallace multiplier (Figure 5(c)):
//!   `3^L` base W×W multipliers (vs `4^L` naive), compressor trees, and
//!   pipeline registers proportional to depth × width; doubled for the
//!   Montgomery reduction half.
//! * memories — composed small SRAM macros (Figure 5(b)); the data memory
//!   pays a multi-port (2R1W, three-stage pipelined) density penalty over
//!   the single-port instruction memory.
//! * linear units and the iterative `minv` — width-proportional adders.
//!
//! Calibration anchors (BN254N, Long = 38, ~55k-instruction image,
//! ~420 live registers): per-core ALU 0.62 mm² (89% `mmul`), DMem
//! 0.27 mm², shared IMem 0.885 mm² → 1-core 1.77 mm², 8-core 8.00 mm².

use crate::model::HwModel;

/// Base multiplier width W in bits (DSP/multiplier-IP granularity).
pub const BASE_MULT_WIDTH: u32 = 16;

/// Single-port SRAM density, mm² per KiB @ 40nm LP (calibrated).
const IMEM_MM2_PER_KIB: f64 = 0.0040;

/// Multi-ported (2R1W, pipelined) register-bank density, mm² per KiB
/// (≈ 5.3× single port — the classic multiport penalty).
const DMEM_MM2_PER_KIB: f64 = 0.0213;

/// Area of one W×W base multiplier *including its share of the Wallace
/// compressor tree*, mm² (calibrated).
const BASE_MULT_MM2: f64 = 0.0194;

/// Pipeline-register area per (stage × bit), mm².
const PIPE_REG_MM2_PER_STAGE_BIT: f64 = 1.19e-5;

/// Linear (Short) unit area per bit, mm².
const LINEAR_MM2_PER_BIT: f64 = 6.0e-5;

/// Iterative inversion unit area per bit, mm².
const MINV_MM2_PER_BIT: f64 = 9.0e-5;

/// NAND2-equivalent gate density per mm² @ 40nm LP (for the Figure 12
/// gate-count line).
const GATES_PER_MM2: f64 = 650_000.0;

/// Inputs the area model needs from a compiled design point.
#[derive(Clone, Copy, Debug)]
pub struct AreaInputs {
    /// Base-field width in bits (log p).
    pub field_bits: u32,
    /// Instruction-memory image size in bytes.
    pub imem_bytes: usize,
    /// Peak live registers (per core, all banks).
    pub live_registers: usize,
    /// Number of parallel cores sharing the instruction memory.
    pub cores: u32,
}

/// Per-component area breakdown in mm² (the paper's Figure 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaBreakdown {
    /// Shared instruction memory.
    pub imem: f64,
    /// Per-core data memory (register banks), total across cores.
    pub dmem: f64,
    /// Per-core ALU total across cores.
    pub alu: f64,
    /// Of which the modular multiplier (subset of `alu`).
    pub mmul: f64,
}

impl AreaBreakdown {
    /// Total die area.
    pub fn total(&self) -> f64 {
        self.imem + self.dmem + self.alu
    }

    /// `mmul` share of the ALU (≈ 0.89 in Figure 6).
    pub fn mmul_share_of_alu(&self) -> f64 {
        self.mmul / self.alu
    }

    /// NAND2-equivalent gate count of the logic (ALU) portion.
    pub fn logic_gate_count(&self) -> f64 {
        self.alu * GATES_PER_MM2
    }

    /// Total SRAM capacity in KiB implied by the memory areas.
    pub fn sram_kib(&self) -> f64 {
        self.imem / IMEM_MM2_PER_KIB + self.dmem / DMEM_MM2_PER_KIB
    }
}

/// Number of Karatsuba recursion levels to cover `bits` with W-wide bases
/// (Figure 5(c): the structure spans `[2W·2^n, 5W·2^n]`).
pub fn karatsuba_levels(bits: u32) -> u32 {
    let mut span_hi = 5 * BASE_MULT_WIDTH;
    let mut n = 0;
    while bits > span_hi {
        span_hi *= 2;
        n += 1;
    }
    n
}

/// Area of the hierarchical Montgomery multiplier in mm².
///
/// `karatsuba = false` models the naive `4^L` partial-product array (the
/// ~40% area saving claim of §3.3 is checked in tests).
pub fn mmul_area(field_bits: u32, pipeline_depth: u32, karatsuba: bool) -> f64 {
    let levels = karatsuba_levels(field_bits);
    let units: f64 = if karatsuba {
        3f64.powi(levels as i32)
    } else {
        4f64.powi(levels as i32)
    };
    // ×2: multiply + Montgomery reduction halves share the structure.
    let mult_array = 2.0 * units * BASE_MULT_MM2;
    // Wallace compressors + pipeline registers: grow with depth and width.
    let pipeline = PIPE_REG_MM2_PER_STAGE_BIT * pipeline_depth as f64 * (2 * field_bits) as f64;
    mult_array + pipeline
}

/// Full-chip area breakdown for a design point.
pub fn area_breakdown(model: &HwModel, inputs: &AreaInputs) -> AreaBreakdown {
    let bits = inputs.field_bits;
    let imem_kib = inputs.imem_bytes as f64 / 1024.0;
    let imem = imem_kib * IMEM_MM2_PER_KIB;

    let dmem_bits = inputs.live_registers as f64 * bits as f64;
    let dmem_kib = dmem_bits / 8.0 / 1024.0;
    let dmem_core = dmem_kib * DMEM_MM2_PER_KIB;

    let mmul = mmul_area(bits, model.long_lat, true);
    let linear = model.n_linear_units as f64 * LINEAR_MM2_PER_BIT * bits as f64;
    let minv = MINV_MM2_PER_BIT * bits as f64;
    let alu_core = mmul + linear + minv;

    let n = inputs.cores as f64;
    AreaBreakdown {
        imem,
        dmem: dmem_core * n,
        alu: alu_core * n,
        mmul: mmul * n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn254_inputs(cores: u32) -> AreaInputs {
        // Paper-scale BN254N design point: ~55.3k single-issue
        // instructions (221 KiB image), ~420 live registers.
        AreaInputs {
            field_bits: 254,
            imem_bytes: 55_300 * 4,
            live_registers: 420,
            cores,
        }
    }

    #[test]
    fn calibration_matches_figure6_single_core() {
        let m = HwModel::paper_default();
        let b = area_breakdown(&m, &bn254_inputs(1));
        assert!(
            (b.total() - 1.77).abs() < 0.12,
            "1-core total {:.3} vs 1.77 mm²",
            b.total()
        );
        assert!((b.imem - 0.885).abs() < 0.06, "imem {:.3} vs 0.885", b.imem);
        assert!((b.alu - 0.62).abs() < 0.07, "alu {:.3} vs 0.62", b.alu);
        assert!((b.dmem - 0.27).abs() < 0.05, "dmem {:.3} vs 0.27", b.dmem);
        assert!(b.mmul_share_of_alu() > 0.80, "mmul dominates the ALU");
    }

    #[test]
    fn calibration_matches_figure6_eight_core() {
        let m = HwModel::paper_default();
        let b = area_breakdown(&m, &bn254_inputs(8));
        assert!(
            (b.total() - 8.00).abs() < 0.6,
            "8-core total {:.3} vs 8.00 mm²",
            b.total()
        );
        // IMem share drops from ~50% to ~11%.
        let share1 = {
            let b1 = area_breakdown(&m, &bn254_inputs(1));
            b1.imem / b1.total()
        };
        let share8 = b.imem / b.total();
        assert!(
            share1 > 0.45 && share1 < 0.55,
            "1-core imem share {share1:.2}"
        );
        assert!(share8 < 0.15, "8-core imem share {share8:.2}");
    }

    #[test]
    fn karatsuba_saves_about_forty_percent() {
        // §3.3: W=16, n=3 → ≈40% reduction vs naive multiplication.
        let k = mmul_area(254, 38, true);
        let n = mmul_area(254, 38, false);
        let saving = 1.0 - (k / n);
        assert!(saving > 0.25 && saving < 0.55, "saving {saving:.2}");
    }

    #[test]
    fn area_grows_superlinearly_but_subquadratically() {
        // Figure 8(a): area/(k log p) grows mildly; far below quadratic.
        let m = HwModel::paper_default();
        let small = area_breakdown(
            &m,
            &AreaInputs {
                field_bits: 254,
                imem_bytes: 220_000,
                live_registers: 420,
                cores: 1,
            },
        );
        let big = area_breakdown(
            &m,
            &AreaInputs {
                field_bits: 638,
                imem_bytes: 560_000,
                live_registers: 420,
                cores: 1,
            },
        );
        let ratio = big.total() / small.total();
        let bits_ratio = 638.0 / 254.0;
        assert!(
            ratio > bits_ratio * 0.9,
            "at least ~linear (got {ratio:.2})"
        );
        assert!(
            ratio < bits_ratio * bits_ratio * 0.7,
            "well below quadratic"
        );
    }

    #[test]
    fn levels_cover_table2_widths() {
        assert_eq!(karatsuba_levels(254), 2); // 5W·2² = 320 ≥ 254
        assert_eq!(karatsuba_levels(509), 3);
        assert_eq!(karatsuba_levels(638), 3);
    }
}
