//! FPGA resource/timing model for the Xilinx Virtex-7 target (the Vivado
//! substitution).
//!
//! Slice counts decompose into the same structural pieces as the ASIC
//! model — DSP-backed `mmul` with slice-based compressors and pipeline
//! registers, LUT-based linear units, distributed/block-RAM register
//! banks — with constants calibrated to the paper's Table 6 row
//! (BN254N single core: 13 928 slices at 153.8 MHz; device capacity
//! 108 300 slices, 3 600 DSPs, 1 470 BRAMs).

use crate::area::{karatsuba_levels, AreaInputs};
use crate::model::HwModel;

/// Virtex-7 device capacity (paper §4, hardware validation setup).
#[derive(Clone, Copy, Debug)]
pub struct FpgaDevice {
    /// Total slices.
    pub slices: u32,
    /// DSP blocks.
    pub dsps: u32,
    /// Block RAMs.
    pub brams: u32,
}

/// The evaluation board's Virtex-7 part.
pub const VIRTEX7: FpgaDevice = FpgaDevice {
    slices: 108_300,
    dsps: 3_600,
    brams: 1_470,
};

/// Estimated FPGA utilisation for a design point.
#[derive(Clone, Copy, Debug)]
pub struct FpgaUtilization {
    /// Occupied slices.
    pub slices: u32,
    /// DSP blocks used by the `mmul`.
    pub dsps: u32,
    /// Block RAMs for instruction + data memory.
    pub brams: u32,
    /// Achievable frequency in MHz.
    pub frequency_mhz: f64,
}

/// Slices per pipeline-stage-bit of the `mmul` datapath (calibrated).
const SLICES_PER_STAGE_BIT: f64 = 0.55;

/// Slices per bit of a linear unit.
const SLICES_PER_LINEAR_BIT: f64 = 2.1;

/// Slices per bit of the iterative inversion unit.
const SLICES_PER_MINV_BIT: f64 = 3.0;

/// Control/interface overhead slices.
const OVERHEAD_SLICES: f64 = 900.0;

/// FPGA cycle time floor (ns) — roughly 5× the 40nm ASIC floor.
const FPGA_T_FLOOR_NS: f64 = 6.5;

/// Estimates utilisation and frequency on the Virtex-7 target.
pub fn fpga_utilization(model: &HwModel, inputs: &AreaInputs) -> FpgaUtilization {
    let bits = inputs.field_bits;
    // Each base multiplier maps to a DSP48 (16-bit granularity), with the
    // Karatsuba structure duplicated for the Montgomery reduction half.
    let levels = karatsuba_levels(bits);
    let dsps = 2 * 3u32.pow(levels) * 4; // 4 DSP48s per 32×32-class unit
                                         // Slices: pipeline registers/compressors + linear units + minv.
    let mmul = SLICES_PER_STAGE_BIT * model.long_lat as f64 * (2 * bits) as f64;
    let linear = model.n_linear_units as f64 * SLICES_PER_LINEAR_BIT * bits as f64;
    let minv = SLICES_PER_MINV_BIT * bits as f64;
    // Register banks in distributed RAM cost slices too.
    let regs = inputs.live_registers as f64 * bits as f64 / 64.0 * 0.38;
    let slices = (mmul + linear + minv + regs + OVERHEAD_SLICES) * inputs.cores as f64;
    // IMem in BRAM (36 Kib each), DMem partly in BRAM.
    let imem_brams = (inputs.imem_bytes as f64 * 8.0 / 36_864.0).ceil();
    let dmem_brams =
        (inputs.live_registers as f64 * bits as f64 / 36_864.0).ceil() * inputs.cores as f64;
    let freq =
        1000.0 / (FPGA_T_FLOOR_NS.max(5.0 * crate::timing::critical_path_ns(model.long_lat, bits)));
    FpgaUtilization {
        slices: slices as u32,
        dsps,
        brams: (imem_brams + dmem_brams) as u32,
        frequency_mhz: freq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn254_point() -> (HwModel, AreaInputs) {
        (
            HwModel::paper_default(),
            AreaInputs {
                field_bits: 254,
                imem_bytes: 55_300 * 4,
                live_registers: 420,
                cores: 1,
            },
        )
    }

    #[test]
    fn calibration_matches_table6_fpga_row() {
        let (m, inputs) = bn254_point();
        let u = fpga_utilization(&m, &inputs);
        assert!(
            (u.slices as f64 - 13_928.0).abs() < 1_200.0,
            "slices {} vs 13928",
            u.slices
        );
        assert!(
            (u.frequency_mhz - 153.8).abs() < 8.0,
            "freq {:.1}",
            u.frequency_mhz
        );
    }

    #[test]
    fn fits_on_the_device() {
        let (m, inputs) = bn254_point();
        let u = fpga_utilization(&m, &inputs);
        assert!(u.slices < VIRTEX7.slices);
        assert!(u.dsps < VIRTEX7.dsps);
        assert!(u.brams < VIRTEX7.brams);
    }

    #[test]
    fn wider_fields_use_more_resources() {
        let m = HwModel::paper_default();
        let small = fpga_utilization(
            &m,
            &AreaInputs {
                field_bits: 254,
                imem_bytes: 220_000,
                live_registers: 420,
                cores: 1,
            },
        );
        let big = fpga_utilization(
            &m,
            &AreaInputs {
                field_bits: 638,
                imem_bytes: 560_000,
                live_registers: 420,
                cores: 1,
            },
        );
        assert!(big.slices > small.slices);
        assert!(big.dsps > small.dsps);
    }
}
