//! # finesse-hw
//!
//! Hardware models for the Finesse co-design loop:
//!
//! - [`model`] — the parameterized pipeline model consumed by the
//!   compiler's scheduler and the cycle-accurate simulator;
//! - [`area`] / [`timing`] — calibrated 40nm-LP analytical ASIC models
//!   (the EDA-feedback substitution);
//! - [`fpga`] — the Virtex-7 resource/frequency model;
//! - [`scaling`] — Stillmaker–Baas-style technology-node normalisation;
//! - [`security`] — (Sex)TNFS security estimation fitted to
//!   Barbulescu–Duquesne;
//! - [`baselines`] — published FlexiPair and Ikeda et al. operating
//!   points for Table 6.

pub mod area;
pub mod baselines;
pub mod fpga;
pub mod model;
pub mod scaling;
pub mod security;
pub mod timing;

pub use area::{area_breakdown, mmul_area, AreaBreakdown, AreaInputs};
pub use baselines::{AsicBaseline, FpgaBaseline, FLEXIPAIR, IKEDA_ASSCC19};
pub use fpga::{fpga_utilization, FpgaDevice, FpgaUtilization, VIRTEX7};
pub use model::{HwModel, HwModelError};
pub use scaling::{scale, NodeMetrics, TechNode};
pub use security::security_bits;
pub use timing::{critical_path_ns, frequency_mhz, latency_us, throughput_ops};
