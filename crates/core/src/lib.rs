//! # finesse-core
//!
//! The Finesse framework facade: the full agile design flow of the paper's
//! Figure 3 behind one builder API.
//!
//! ```no_run
//! use finesse_core::DesignFlow;
//!
//! let accelerator = DesignFlow::for_curve("BN254N").cores(8).build()?;
//! assert!(accelerator.validate(3).all_passed());
//! println!("{}", accelerator.report());
//! # Ok::<(), finesse_dse::DseError>(())
//! ```
//!
//! [`DesignFlow`] wires together CodeGen (`finesse-compiler`), lowering
//! and variants (`finesse-ir`), scheduling, the simulators
//! (`finesse-sim`), and the area/timing feedback (`finesse-hw`); the
//! result is an [`Accelerator`] carrying the binary image, the evaluated
//! metrics and a validation harness against the reference pairing. The
//! shared software [`CostModel`] (analytic defaults or measured medians
//! from `results/BENCH_fieldops.json`) is re-exported here so callers can
//! price candidate points against the current software baseline.

pub mod config;
pub mod error;
pub mod flow;

pub use config::{FlowConfig, ParseConfigError};
pub use error::{FinesseError, PolyError, SrsError};
pub use finesse_dse::{compare_with_software, DseError, SwComparison};
pub use finesse_ir::{CostModel, CostModelError, CurveCostRow, Kernel, KernelCosts, Provenance};
pub use flow::{Accelerator, DesignFlow, ValidationReport};
