//! The workspace-level error type.
//!
//! Every fallible layer of the stack defines its own narrow error enum —
//! [`FieldCtxError`]/[`FieldBytesError`] in `finesse-ff`, [`TowerError`]
//! for the extension tower, [`CurveError`] for curve construction and
//! group arithmetic, [`DecodeError`] for the untrusted wire format, and
//! [`DseError`] for the design-space flow. [`FinesseError`] unifies them
//! so applications that drive the whole framework can use one `?`-able
//! type without erasing which layer rejected the input.
//!
//! The polynomial-commitment errors ([`SrsError`], [`PolyError`]) are
//! *defined* here rather than in `finesse-poly`: that crate sits above
//! `finesse-core` in the workspace DAG, and a variant's payload type
//! must be visible to the enum that carries it — so the unification
//! point owns the definitions and `finesse-poly` re-exports them.

use std::fmt;

pub use finesse_curves::{CurveError, DecodeError};
pub use finesse_dse::DseError;
pub use finesse_ff::{FieldBytesError, FieldCtxError, TowerError};

/// Rejection of an untrusted SRS encoding (`finesse-poly`'s wire
/// format: versioned header + length-prefixed compressed points).
///
/// Strict decoding contract, matching [`DecodeError`]'s: every accepted
/// byte string is the unique canonical encoding of a valid SRS, and
/// every rejection names what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrsError {
    /// Fewer bytes than the fixed header (magic, version, name, count).
    TruncatedHeader,
    /// The leading magic was not `b"FSRS"`.
    BadMagic([u8; 4]),
    /// A version this library does not decode.
    UnsupportedVersion(u8),
    /// The encoded curve name differs from the curve the caller decoded
    /// against (an SRS is only meaningful on its own curve).
    CurveMismatch {
        /// The caller's curve.
        expected: String,
        /// The name carried by the encoding.
        found: String,
    },
    /// The header advertises an SRS with no G1 powers at all.
    Empty,
    /// A point's declared length does not match the curve's compressed
    /// wire length.
    PointLength {
        /// Which point record (G1 powers first, then `[τ]G2`).
        index: usize,
        /// The declared byte length.
        declared: usize,
        /// The curve's canonical compressed length.
        expected: usize,
    },
    /// The byte string ended inside a point record.
    TruncatedPoint {
        /// Which point record was cut short.
        index: usize,
    },
    /// A point failed strict wire decoding (non-canonical bytes,
    /// off-curve x, outside the prime-order subgroup, …).
    Point {
        /// Which point record was rejected.
        index: usize,
        /// The wire layer's rejection.
        source: DecodeError,
    },
    /// Bytes left over after the advertised records were decoded.
    TrailingBytes {
        /// How many bytes too many.
        extra: usize,
    },
}

impl fmt::Display for SrsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrsError::TruncatedHeader => write!(f, "truncated SRS header"),
            SrsError::BadMagic(m) => write!(f, "bad SRS magic {m:02x?} (expected \"FSRS\")"),
            SrsError::UnsupportedVersion(v) => write!(f, "unsupported SRS version {v}"),
            SrsError::CurveMismatch { expected, found } => {
                write!(f, "SRS for curve {found:?}, decoded against {expected:?}")
            }
            SrsError::Empty => write!(f, "SRS declares zero G1 powers"),
            SrsError::PointLength {
                index,
                declared,
                expected,
            } => write!(
                f,
                "SRS point {index}: declared {declared} bytes, curve encodes {expected}"
            ),
            SrsError::TruncatedPoint { index } => write!(f, "SRS truncated inside point {index}"),
            SrsError::Point { index, source } => write!(f, "SRS point {index}: {source}"),
            SrsError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the SRS records")
            }
        }
    }
}

impl std::error::Error for SrsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SrsError::Point { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A polynomial-commitment operation failed (`finesse-poly`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyError {
    /// The polynomial does not fit the SRS: committing to degree d needs
    /// d+1 powers of tau.
    DegreeTooLarge {
        /// Coefficients in the polynomial (degree + 1).
        coefficients: usize,
        /// G1 powers the SRS holds.
        capacity: usize,
    },
    /// The SRS and the pairing engine were built for different curves.
    CurveMismatch {
        /// The engine's curve.
        engine: String,
        /// The SRS's curve.
        srs: String,
    },
    /// A batched opening was requested at zero evaluation points.
    NoPoints,
    /// Two evaluation points of a batched opening coincide (the
    /// interpolation denominators vanish).
    DuplicatePoint,
    /// A claimed opening failed its pairing check.
    OpeningRejected,
    /// One or more claims in a batch failed; `bad` lists their indices
    /// in push order (from the isolating verifier).
    BatchRejected {
        /// Indices of the claims whose checks failed.
        bad: Vec<usize>,
    },
    /// Group arithmetic under the commitment failed (propagated MSM
    /// shape errors).
    Curve(CurveError),
}

impl fmt::Display for PolyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolyError::DegreeTooLarge {
                coefficients,
                capacity,
            } => write!(
                f,
                "polynomial has {coefficients} coefficients, SRS holds {capacity} powers"
            ),
            PolyError::CurveMismatch { engine, srs } => {
                write!(f, "engine on curve {engine:?}, SRS on {srs:?}")
            }
            PolyError::NoPoints => write!(f, "batched opening needs at least one point"),
            PolyError::DuplicatePoint => write!(f, "duplicate evaluation point in batch"),
            PolyError::OpeningRejected => write!(f, "opening failed its pairing check"),
            PolyError::BatchRejected { bad } => {
                write!(f, "batch rejected; failing claims: {bad:?}")
            }
            PolyError::Curve(e) => write!(f, "group arithmetic: {e}"),
        }
    }
}

impl std::error::Error for PolyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PolyError::Curve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CurveError> for PolyError {
    fn from(e: CurveError) -> Self {
        PolyError::Curve(e)
    }
}

/// Any error the Finesse workspace can produce, tagged by origin layer.
///
/// Obtained via `From` on each layer's error type, so application code
/// can `?` across layers:
///
/// ```
/// use finesse_core::FinesseError;
/// use finesse_curves::Curve;
///
/// fn parse_point(bytes: &[u8]) -> Result<(), FinesseError> {
///     let curve = Curve::try_by_name("BN254N")?; // CurveError -> FinesseError
///     let _p = curve.decode_g1(bytes)?; // DecodeError -> FinesseError
///     Ok(())
/// }
/// assert!(parse_point(&[0x07]).is_err());
/// ```
#[derive(Debug)]
pub enum FinesseError {
    /// Base-field context construction failed (`finesse-ff`).
    FieldCtx(FieldCtxError),
    /// A canonical field-element encoding was rejected (`finesse-ff`).
    FieldBytes(FieldBytesError),
    /// Tower construction or element assembly failed (`finesse-ff`).
    Tower(TowerError),
    /// Curve construction or group arithmetic failed (`finesse-curves`).
    Curve(CurveError),
    /// An untrusted point encoding was rejected (`finesse-curves`).
    Decode(DecodeError),
    /// The design flow or cost model failed (`finesse-dse`).
    Dse(DseError),
    /// A polynomial-commitment operation failed (`finesse-poly`).
    Poly(PolyError),
    /// An untrusted SRS encoding was rejected (`finesse-poly`).
    Srs(SrsError),
}

impl fmt::Display for FinesseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinesseError::FieldCtx(e) => write!(f, "field context: {e}"),
            FinesseError::FieldBytes(e) => write!(f, "field encoding: {e}"),
            FinesseError::Tower(e) => write!(f, "tower: {e}"),
            FinesseError::Curve(e) => write!(f, "curve: {e}"),
            FinesseError::Decode(e) => write!(f, "point encoding: {e}"),
            FinesseError::Dse(e) => write!(f, "design flow: {e}"),
            FinesseError::Poly(e) => write!(f, "polynomial commitment: {e}"),
            FinesseError::Srs(e) => write!(f, "SRS encoding: {e}"),
        }
    }
}

impl std::error::Error for FinesseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FinesseError::FieldCtx(e) => Some(e),
            FinesseError::FieldBytes(e) => Some(e),
            FinesseError::Tower(e) => Some(e),
            FinesseError::Curve(e) => Some(e),
            FinesseError::Decode(e) => Some(e),
            FinesseError::Dse(e) => Some(e),
            FinesseError::Poly(e) => Some(e),
            FinesseError::Srs(e) => Some(e),
        }
    }
}

impl From<FieldCtxError> for FinesseError {
    fn from(e: FieldCtxError) -> Self {
        FinesseError::FieldCtx(e)
    }
}

impl From<FieldBytesError> for FinesseError {
    fn from(e: FieldBytesError) -> Self {
        FinesseError::FieldBytes(e)
    }
}

impl From<TowerError> for FinesseError {
    fn from(e: TowerError) -> Self {
        FinesseError::Tower(e)
    }
}

impl From<CurveError> for FinesseError {
    fn from(e: CurveError) -> Self {
        FinesseError::Curve(e)
    }
}

impl From<DecodeError> for FinesseError {
    fn from(e: DecodeError) -> Self {
        FinesseError::Decode(e)
    }
}

impl From<DseError> for FinesseError {
    fn from(e: DseError) -> Self {
        FinesseError::Dse(e)
    }
}

impl From<PolyError> for FinesseError {
    fn from(e: PolyError) -> Self {
        FinesseError::Poly(e)
    }
}

impl From<SrsError> for FinesseError {
    fn from(e: SrsError) -> Self {
        FinesseError::Srs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_tags_layer_and_chains_source() {
        let e: FinesseError = DecodeError::InvalidTag(0x07).into();
        let msg = format!("{e}");
        assert!(msg.starts_with("point encoding:"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn question_mark_crosses_layers() {
        fn inner() -> Result<(), FinesseError> {
            Err(FieldBytesError::NonCanonical)?;
            Ok(())
        }
        assert!(matches!(
            inner(),
            Err(FinesseError::FieldBytes(FieldBytesError::NonCanonical))
        ));
    }
}
