//! The workspace-level error type.
//!
//! Every fallible layer of the stack defines its own narrow error enum —
//! [`FieldCtxError`]/[`FieldBytesError`] in `finesse-ff`, [`TowerError`]
//! for the extension tower, [`CurveError`] for curve construction and
//! group arithmetic, [`DecodeError`] for the untrusted wire format, and
//! [`DseError`] for the design-space flow. [`FinesseError`] unifies them
//! so applications that drive the whole framework can use one `?`-able
//! type without erasing which layer rejected the input.

use std::fmt;

pub use finesse_curves::{CurveError, DecodeError};
pub use finesse_dse::DseError;
pub use finesse_ff::{FieldBytesError, FieldCtxError, TowerError};

/// Any error the Finesse workspace can produce, tagged by origin layer.
///
/// Obtained via `From` on each layer's error type, so application code
/// can `?` across layers:
///
/// ```
/// use finesse_core::FinesseError;
/// use finesse_curves::Curve;
///
/// fn parse_point(bytes: &[u8]) -> Result<(), FinesseError> {
///     let curve = Curve::try_by_name("BN254N")?; // CurveError -> FinesseError
///     let _p = curve.decode_g1(bytes)?; // DecodeError -> FinesseError
///     Ok(())
/// }
/// assert!(parse_point(&[0x07]).is_err());
/// ```
#[derive(Debug)]
pub enum FinesseError {
    /// Base-field context construction failed (`finesse-ff`).
    FieldCtx(FieldCtxError),
    /// A canonical field-element encoding was rejected (`finesse-ff`).
    FieldBytes(FieldBytesError),
    /// Tower construction or element assembly failed (`finesse-ff`).
    Tower(TowerError),
    /// Curve construction or group arithmetic failed (`finesse-curves`).
    Curve(CurveError),
    /// An untrusted point encoding was rejected (`finesse-curves`).
    Decode(DecodeError),
    /// The design flow or cost model failed (`finesse-dse`).
    Dse(DseError),
}

impl fmt::Display for FinesseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FinesseError::FieldCtx(e) => write!(f, "field context: {e}"),
            FinesseError::FieldBytes(e) => write!(f, "field encoding: {e}"),
            FinesseError::Tower(e) => write!(f, "tower: {e}"),
            FinesseError::Curve(e) => write!(f, "curve: {e}"),
            FinesseError::Decode(e) => write!(f, "point encoding: {e}"),
            FinesseError::Dse(e) => write!(f, "design flow: {e}"),
        }
    }
}

impl std::error::Error for FinesseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FinesseError::FieldCtx(e) => Some(e),
            FinesseError::FieldBytes(e) => Some(e),
            FinesseError::Tower(e) => Some(e),
            FinesseError::Curve(e) => Some(e),
            FinesseError::Decode(e) => Some(e),
            FinesseError::Dse(e) => Some(e),
        }
    }
}

impl From<FieldCtxError> for FinesseError {
    fn from(e: FieldCtxError) -> Self {
        FinesseError::FieldCtx(e)
    }
}

impl From<FieldBytesError> for FinesseError {
    fn from(e: FieldBytesError) -> Self {
        FinesseError::FieldBytes(e)
    }
}

impl From<TowerError> for FinesseError {
    fn from(e: TowerError) -> Self {
        FinesseError::Tower(e)
    }
}

impl From<CurveError> for FinesseError {
    fn from(e: CurveError) -> Self {
        FinesseError::Curve(e)
    }
}

impl From<DecodeError> for FinesseError {
    fn from(e: DecodeError) -> Self {
        FinesseError::Decode(e)
    }
}

impl From<DseError> for FinesseError {
    fn from(e: DseError) -> Self {
        FinesseError::Dse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_tags_layer_and_chains_source() {
        let e: FinesseError = DecodeError::InvalidTag(0x07).into();
        let msg = format!("{e}");
        assert!(msg.starts_with("point encoding:"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn question_mark_crosses_layers() {
        fn inner() -> Result<(), FinesseError> {
            Err(FieldBytesError::NonCanonical)?;
            Ok(())
        }
        assert!(matches!(
            inner(),
            Err(FinesseError::FieldBytes(FieldBytesError::NonCanonical))
        ));
    }
}
