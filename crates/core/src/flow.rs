//! The Finesse design flow: curve in, validated accelerator out
//! (the paper's Figure 3, end to end).
//!
//! [`DesignFlow`] is the builder users drive: pick a curve, a variant
//! preset, a hardware model and a core count; [`DesignFlow::build`]
//! compiles, simulates, models area/timing, and — on request —
//! *validates* the binary against the reference pairing on random inputs
//! (the paper's simulator-versus-library validation stage).

use crate::config::FlowConfig;
use finesse_compiler::{compile_pairing, tower_shape, CompileOptions, CompiledPairing};
use finesse_curves::Curve;
use finesse_dse::{evaluate_point, DesignPoint, DseError, Evaluation};
use finesse_ff::BigUint;
use finesse_hw::HwModel;
use finesse_ir::convert::{fps_to_fpk, fq_to_fps};
use finesse_ir::VariantConfig;
use finesse_pairing::PairingEngine;
use finesse_sim::run_image;
use std::fmt;
use std::sync::Arc;

/// Builder for an accelerator design.
pub struct DesignFlow {
    curve: Arc<Curve>,
    variants: VariantConfig,
    hw: HwModel,
    cores: u32,
}

impl DesignFlow {
    /// Starts a flow for a named Table 2 curve with paper-default
    /// hardware and all-Karatsuba variants.
    pub fn for_curve(name: &str) -> DesignFlow {
        let curve = Curve::by_name(name);
        let shape = tower_shape(&curve);
        DesignFlow {
            variants: VariantConfig::all_karatsuba(&shape),
            hw: HwModel::paper_default(),
            cores: 1,
            curve,
        }
    }

    /// Starts a flow from a parsed [`FlowConfig`].
    pub fn from_config(cfg: &FlowConfig) -> DesignFlow {
        let mut flow = Self::for_curve(&cfg.curve);
        let shape = tower_shape(&flow.curve);
        flow.variants = match cfg.variants.as_str() {
            "all_schoolbook" => VariantConfig::all_schoolbook(&shape),
            "manual" => VariantConfig::manual(&shape),
            _ => VariantConfig::all_karatsuba(&shape),
        };
        flow.hw = cfg.hw_model();
        flow.cores = cfg.cores;
        flow
    }

    /// Overrides the variant selection.
    pub fn variants(mut self, v: VariantConfig) -> Self {
        self.variants = v;
        self
    }

    /// Overrides the hardware model.
    pub fn hardware(mut self, hw: HwModel) -> Self {
        self.hw = hw;
        self
    }

    /// Sets the parallel core count (SIMT replication, §3.3).
    pub fn cores(mut self, n: u32) -> Self {
        self.cores = n;
        self
    }

    /// The flow's curve.
    pub fn curve(&self) -> &Arc<Curve> {
        &self.curve
    }

    /// Compiles and evaluates the accelerator.
    ///
    /// # Errors
    ///
    /// Propagates compilation and evaluation failures as [`DseError`].
    pub fn build(self) -> Result<Accelerator, DseError> {
        let compiled = compile_pairing(
            &self.curve,
            &self.variants,
            &self.hw,
            &CompileOptions::default(),
        )?;
        let point = DesignPoint {
            label: "flow".into(),
            variants: self.variants.clone(),
            hw: self.hw.clone(),
        };
        let eval = evaluate_point(&self.curve, &point, self.cores)?;
        Ok(Accelerator {
            curve: self.curve,
            compiled,
            eval,
            cores: self.cores,
        })
    }
}

/// A compiled, evaluated accelerator design.
pub struct Accelerator {
    curve: Arc<Curve>,
    compiled: CompiledPairing,
    eval: Evaluation,
    cores: u32,
}

/// Validation outcome of [`Accelerator::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationReport {
    /// Test vectors executed.
    pub vectors: u32,
    /// Vectors whose binary output matched the reference pairing.
    pub matching: u32,
}

impl ValidationReport {
    /// True iff every vector matched.
    pub fn all_passed(&self) -> bool {
        self.vectors == self.matching
    }
}

impl Accelerator {
    /// The underlying compiled artifact.
    pub fn compiled(&self) -> &CompiledPairing {
        &self.compiled
    }

    /// The evaluation metrics (cycles, IPC, area, frequency, ...).
    pub fn evaluation(&self) -> &Evaluation {
        &self.eval
    }

    /// The curve.
    pub fn curve(&self) -> &Arc<Curve> {
        &self.curve
    }

    /// Runs the compiled binary on `[a]G1, [b]G2` for `vectors`
    /// deterministic scalar pairs and cross-checks against the reference
    /// pairing engine (the paper's validation stage).
    pub fn validate(&self, vectors: u32) -> ValidationReport {
        let engine = PairingEngine::new(Arc::clone(&self.curve));
        let mut matching = 0;
        for i in 0..vectors {
            let a = BigUint::from_u64(0x5D_EE_C3 + 977 * i as u64);
            let b = BigUint::from_u64(0xB0BA_CAFE_u64.rotate_left(i) | 1);
            let p = self.curve.g1_mul(self.curve.g1_generator(), &a);
            let q = self.curve.g2_mul(self.curve.g2_generator(), &b);
            let expected = engine.pair(&p, &q);

            let mut inputs: Vec<BigUint> = vec![p.x.to_biguint(), p.y.to_biguint()];
            inputs.extend(fq_to_fps(&q.x).iter().map(|f| f.to_biguint()));
            inputs.extend(fq_to_fps(&q.y).iter().map(|f| f.to_biguint()));
            let Ok(out) = run_image(&self.compiled.image, self.curve.fp(), &inputs) else {
                continue;
            };
            let fps: Vec<_> = out
                .iter()
                .map(|v| self.curve.fp().from_biguint(v))
                .collect();
            if fps_to_fpk(self.curve.tower(), &fps) == expected {
                matching += 1;
            }
        }
        ValidationReport { vectors, matching }
    }

    /// A human-readable design report (the "architectural feedback in
    /// minutes" of §4.5).
    pub fn report(&self) -> String {
        let e = &self.eval;
        format!(
            "curve           : {}\n\
             hardware        : {}\n\
             cores           : {}\n\
             instructions    : {}\n\
             cycles/pairing  : {}\n\
             IPC             : {:.2}\n\
             frequency       : {:.1} MHz\n\
             latency         : {:.1} us\n\
             throughput      : {:.1} kops\n\
             area (total)    : {:.2} mm2  [imem {:.2}, dmem {:.2}, alu {:.2}]\n\
             area efficiency : {:.2} kops/mm2\n\
             imem image      : {} KiB\n\
             peak registers  : {}\n\
             compile time    : {:.0} ms",
            self.curve.name(),
            self.compiled.hw,
            self.cores,
            e.instructions,
            e.cycles,
            e.ipc,
            e.frequency_mhz,
            e.latency_us,
            e.throughput_ops / 1000.0,
            e.area.total(),
            e.area.imem,
            e.area.dmem,
            e.area.alu,
            e.throughput_ops / 1000.0 / e.area.total(),
            e.imem_bytes / 1024,
            e.peak_regs,
            e.compile_ms,
        )
    }
}

impl fmt::Debug for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Accelerator")
            .field("curve", &self.curve.name())
            .field("cycles", &self.eval.cycles)
            .field("ipc", &self.eval.ipc)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_builds_and_validates_bn254n() {
        let acc = DesignFlow::for_curve("BN254N").build().unwrap();
        let v = acc.validate(2);
        assert!(v.all_passed(), "{v:?}");
        let report = acc.report();
        assert!(report.contains("BN254N"));
        assert!(report.contains("kops"));
    }

    #[test]
    fn flow_from_config_respects_hardware() {
        let cfg = crate::config::FlowConfig::parse("curve = BN254N\nlong = 20\nshort = 8").unwrap();
        let acc = DesignFlow::from_config(&cfg).build().unwrap();
        assert_eq!(acc.compiled().hw.long_lat, 20);
    }
}
