//! Plain-text design configuration (the paper's YAML role, dependency-free).
//!
//! A tiny `key = value` format with `#` comments:
//!
//! ```text
//! curve = BN254N
//! long = 38
//! short = 8
//! linear_units = 1
//! fifo = false
//! variants = manual      # all_karatsuba | all_schoolbook | manual
//! cores = 8
//! ```

use finesse_hw::HwModel;
use std::collections::HashMap;
use std::fmt;

/// A parsed flow configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowConfig {
    /// Curve name (Table 2).
    pub curve: String,
    /// Long (mmul) latency.
    pub long: u32,
    /// Short (linear) latency.
    pub short: u32,
    /// Linear unit count (1 = single issue).
    pub linear_units: u8,
    /// Write-back FIFO.
    pub fifo: bool,
    /// Variant preset name.
    pub variants: String,
    /// Parallel core count.
    pub cores: u32,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            curve: "BN254N".into(),
            long: 38,
            short: 8,
            linear_units: 1,
            fifo: false,
            variants: "all_karatsuba".into(),
            cores: 1,
        }
    }
}

/// Error parsing a [`FlowConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseConfigError {
    /// A line had no `=` separator.
    BadLine(usize),
    /// A value failed to parse for its key.
    BadValue(String),
    /// An unknown key.
    UnknownKey(String),
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseConfigError::BadLine(n) => write!(f, "line {n}: expected `key = value`"),
            ParseConfigError::BadValue(k) => write!(f, "invalid value for key `{k}`"),
            ParseConfigError::UnknownKey(k) => write!(f, "unknown key `{k}`"),
        }
    }
}

impl std::error::Error for ParseConfigError {}

impl FlowConfig {
    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseConfigError`] on malformed lines, unknown keys or
    /// unparseable values.
    pub fn parse(text: &str) -> Result<FlowConfig, ParseConfigError> {
        let mut kv = HashMap::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or(ParseConfigError::BadLine(n + 1))?;
            kv.insert(k.trim().to_lowercase(), v.trim().to_owned());
        }
        let mut cfg = FlowConfig::default();
        for (k, v) in kv {
            match k.as_str() {
                "curve" => cfg.curve = v,
                "long" => cfg.long = v.parse().map_err(|_| ParseConfigError::BadValue(k))?,
                "short" => cfg.short = v.parse().map_err(|_| ParseConfigError::BadValue(k))?,
                "linear_units" => {
                    cfg.linear_units = v.parse().map_err(|_| ParseConfigError::BadValue(k))?
                }
                "fifo" => cfg.fifo = v.parse().map_err(|_| ParseConfigError::BadValue(k))?,
                "variants" => cfg.variants = v,
                "cores" => cfg.cores = v.parse().map_err(|_| ParseConfigError::BadValue(k))?,
                _ => return Err(ParseConfigError::UnknownKey(k)),
            }
        }
        Ok(cfg)
    }

    /// Builds the hardware model this config describes.
    pub fn hw_model(&self) -> HwModel {
        let mut hw = if self.linear_units <= 1 {
            HwModel::single_issue(self.long, self.short)
        } else {
            HwModel::vliw(self.linear_units, self.long, self.short)
        };
        if self.fifo && !hw.wb_fifo {
            hw = hw.with_fifo();
        }
        hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = "
            curve = BLS24-509   # big curve
            long = 26
            short = 2
            linear_units = 4
            fifo = true
            variants = manual
            cores = 8
        ";
        let cfg = FlowConfig::parse(text).unwrap();
        assert_eq!(cfg.curve, "BLS24-509");
        assert_eq!(cfg.long, 26);
        assert_eq!(cfg.cores, 8);
        let hw = cfg.hw_model();
        assert_eq!(hw.issue_width, 5);
        assert!(hw.wb_fifo);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(matches!(
            FlowConfig::parse("frobnicate = 7"),
            Err(ParseConfigError::UnknownKey(_))
        ));
        assert!(matches!(
            FlowConfig::parse("long = many"),
            Err(ParseConfigError::BadValue(_))
        ));
        assert!(matches!(
            FlowConfig::parse("garbage"),
            Err(ParseConfigError::BadLine(1))
        ));
    }

    #[test]
    fn defaults_apply() {
        let cfg = FlowConfig::parse("").unwrap();
        assert_eq!(cfg, FlowConfig::default());
    }
}
