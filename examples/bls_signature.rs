//! BLS short signatures (Boneh-Lynn-Shacham) on BLS12-381 — one of the
//! motivating applications from the paper's introduction.
//!
//! Sign: sigma = [sk]H(m) in G1. Verify: e(sigma, G2) == e(H(m), pk).
//!
//! ```text
//! cargo run --example bls_signature
//! ```

use finesse_curves::{Affine, Curve, CurveError};
use finesse_ff::{BigUint, Fp, Fq};
use finesse_pairing::PairingEngine;
use std::sync::Arc;

struct KeyPair {
    sk: BigUint,
    pk: Affine<Fq>, // [sk] G2
}

fn keygen(curve: &Arc<Curve>, seed: u64) -> KeyPair {
    // Deterministic toy key derivation (do not use for real keys).
    let sk = BigUint::from_u64(seed).modpow(&BigUint::from_u64(3), curve.r());
    let pk = curve.g2_mul(curve.g2_generator(), &sk);
    KeyPair { sk, pk }
}

fn sign(curve: &Arc<Curve>, kp: &KeyPair, msg: &[u8]) -> Result<Affine<Fp>, CurveError> {
    let h = curve.hash_to_g1(msg)?;
    Ok(curve.g1_mul(&h, &kp.sk))
}

fn verify(
    curve: &Arc<Curve>,
    engine: &PairingEngine,
    pk: &Affine<Fq>,
    msg: &[u8],
    sig: &Affine<Fp>,
) -> bool {
    // A message that cannot be hashed cannot have a valid signature.
    let Ok(h) = curve.hash_to_g1(msg) else {
        return false;
    };
    engine.pair(sig, curve.g2_generator()) == engine.pair(&h, pk)
}

fn main() {
    let curve = Curve::by_name("BLS12-381");
    let engine = PairingEngine::new(curve.clone());
    let kp = keygen(&curve, 0xF00D_FACE);

    let msg = b"agile pairing accelerators";
    let sig = sign(&curve, &kp, msg).expect("hash-to-curve succeeds for real curves");
    println!("message   : {:?}", std::str::from_utf8(msg).unwrap());
    println!("signature : ({}, ...)", sig.x);

    assert!(
        verify(&curve, &engine, &kp.pk, msg, &sig),
        "valid signature verifies"
    );
    println!("verify    : ok");

    assert!(!verify(&curve, &engine, &kp.pk, b"tampered message", &sig));
    println!("tampered  : rejected");

    let other = keygen(&curve, 0xBAD_5EED);
    assert!(!verify(&curve, &engine, &other.pk, msg, &sig));
    println!("wrong key : rejected");
}
