//! BLS short signatures (Boneh-Lynn-Shacham) on BLS12-381 — one of the
//! motivating applications from the paper's introduction.
//!
//! Sign: sigma = [sk]H(m) in G1. Verify: e(sigma, G2) == e(H(m), pk).
//!
//! Signer public keys are held as [`G2Precomputed`] entries: registering
//! a key once builds its fixed-base comb in the curve's shared
//! precompute cache, so every later scalar multiplication on that key —
//! key rotation, epoch-key derivation, proof-of-possession transcripts —
//! runs at fixed-base speed and stays bit-identical to the variable-base
//! path.
//!
//! Batch verify (the throughput path a pairing accelerator serves): push
//! every `e(σᵢ, G2) =? e(H(mᵢ), pkᵢ)` check into a [`PairingAccumulator`]
//! and settle once. The accumulator draws 128-bit Fiat–Shamir weights,
//! collapses the G1 sides into short-scalar MSMs (one per distinct G2
//! point, normalised with a single shared inversion), and verifies the
//! folded product with one multi-Miller loop over cached prepared G2
//! points plus one final exponentiation — `1 + #signers` Miller loops
//! instead of `2n` full pairings, with the random weights preventing
//! cross-message forgery cancellation.
//!
//! ```text
//! cargo run --example bls_signature
//! ```

use finesse::curves::{Affine, Compression, Curve, CurveError, G2Precomputed};
use finesse::ff::{BigUint, Fp, Fq};
use finesse::pairing::{PairingAccumulator, PairingEngine};
use finesse::FinesseError;
use std::sync::Arc;
use std::time::Instant;

struct KeyPair {
    sk: BigUint,
    /// `[sk]G2`, registered in the curve's precompute cache.
    pk: Arc<G2Precomputed>,
}

impl KeyPair {
    /// The public key as a plain group element (pairing input, wire
    /// encoding).
    fn pk_point(&self) -> &Affine<Fq> {
        self.pk.base()
    }
}

fn keygen(curve: &Arc<Curve>, seed: u64) -> KeyPair {
    // Deterministic toy key derivation (do not use for real keys).
    let sk = BigUint::from_u64(seed).modpow(&BigUint::from_u64(3), curve.r());
    let pk = curve.g2_mul(curve.g2_generator(), &sk);
    KeyPair {
        sk,
        pk: curve.precompute_g2(&pk),
    }
}

fn sign(curve: &Arc<Curve>, kp: &KeyPair, msg: &[u8]) -> Result<Affine<Fp>, CurveError> {
    let h = curve.hash_to_g1(msg)?;
    Ok(curve.g1_mul(&h, &kp.sk))
}

fn verify(
    curve: &Arc<Curve>,
    engine: &PairingEngine,
    pk: &Affine<Fq>,
    msg: &[u8],
    sig: &Affine<Fp>,
) -> bool {
    // A message that cannot be hashed cannot have a valid signature.
    let Ok(h) = curve.hash_to_g1(msg) else {
        return false;
    };
    engine.pair(sig, curve.g2_generator()) == engine.pair(&h, pk)
}

/// One `(public key, message, signature)` entry of a verification batch.
struct BatchEntry<'a> {
    pk: Affine<Fq>,
    msg: &'a [u8],
    sig: Affine<Fp>,
}

/// Verifies a whole batch through the deferred accumulator: each entry
/// pushes the check `e(σᵢ, G2) =? e(H(mᵢ), pkᵢ)` and a single `settle`
/// folds them with random 128-bit weights ρᵢ into
/// `e(−Σᵢ ρᵢσᵢ, G2) · Π_signer e(Σ_{i∈signer} ρᵢH(mᵢ), pk) = 1` —
/// one short-scalar MSM per distinct G2 point, one shared final
/// exponentiation, and `1 + #signers` (cached, prepared) Miller loops
/// for the entire batch.
fn batch_verify(curve: &Arc<Curve>, engine: &PairingEngine, batch: &[BatchEntry]) -> bool {
    let mut acc = PairingAccumulator::with_label(engine, b"finesse-bls-batch-v1");
    for entry in batch {
        let Ok(h) = curve.hash_to_g1(entry.msg) else {
            return false;
        };
        acc.push_check(&entry.sig, curve.g2_generator(), &h, &entry.pk);
    }
    acc.settle()
}

/// Like [`batch_verify`], but on failure bisects the batch (reusing the
/// cached prepared-G2 lines) and reports exactly which entries are bad.
fn batch_verify_isolating(
    curve: &Arc<Curve>,
    engine: &PairingEngine,
    batch: &[BatchEntry],
) -> Result<(), Vec<usize>> {
    let mut acc = PairingAccumulator::with_label(engine, b"finesse-bls-batch-v1");
    for (i, entry) in batch.iter().enumerate() {
        let Ok(h) = curve.hash_to_g1(entry.msg) else {
            return Err(vec![i]);
        };
        acc.push_check(&entry.sig, curve.g2_generator(), &h, &entry.pk);
    }
    acc.settle_isolating()
}

fn main() -> Result<(), FinesseError> {
    let curve = Curve::by_name("BLS12-381");
    let engine = PairingEngine::new(curve.clone());
    let kp = keygen(&curve, 0xF00D_FACE);

    let msg: &[u8] = b"agile pairing accelerators";
    let sig = sign(&curve, &kp, msg)?;
    println!("message   : {}", String::from_utf8_lossy(msg));
    println!("signature : ({}, ...)", sig.x);

    // The registered key multiplies at fixed-base speed — and the plain
    // entry point now routes through the same comb on a cache hit,
    // bit-identical to the precomputed call.
    let epoch = BigUint::from_u64(20250808);
    let epoch_pk = curve.g2_mul_precomputed(&kp.pk, &epoch);
    assert_eq!(
        epoch_pk,
        curve.g2_mul(kp.pk_point(), &epoch),
        "registered base: plain and precomputed muls agree"
    );
    println!("precompute: pk registered; epoch-key derivation rides its comb");

    // Public keys travel over the wire in compressed form; the strict
    // decoder re-validates canonical limbs, curve membership, and the G2
    // subgroup, so a verifier never operates on a malformed key.
    let pk_bytes = curve.encode_g2(kp.pk_point(), Compression::Compressed);
    let pk = curve.decode_g2(&pk_bytes)?;
    assert_eq!(&pk, kp.pk_point(), "wire round-trip is the identity");
    println!(
        "wire pk   : {} bytes (compressed), round-trip ok",
        pk_bytes.len()
    );

    // Flipping one bit of the encoding must yield a typed rejection, not
    // a different-but-accepted key.
    let mut tampered_pk = pk_bytes.clone();
    tampered_pk[pk_bytes.len() / 2] ^= 0x01;
    match curve.decode_g2(&tampered_pk) {
        Err(e) => println!("bad pk    : rejected ({e})"),
        Ok(p) => assert_eq!(
            &p,
            kp.pk_point(),
            "a decode may only succeed on the original key"
        ),
    }

    assert!(
        verify(&curve, &engine, &pk, msg, &sig),
        "valid signature verifies"
    );
    println!("verify    : ok");

    assert!(!verify(
        &curve,
        &engine,
        kp.pk_point(),
        b"tampered message",
        &sig
    ));
    println!("tampered  : rejected");

    let other = keygen(&curve, 0xBAD_5EED);
    assert!(!verify(&curve, &engine, other.pk_point(), msg, &sig));
    println!("wrong key : rejected");

    // --- batch verification: 3 signers, 8 signatures, one pairing product
    let signers = [kp, keygen(&curve, 0xBAD_5EED), keygen(&curve, 0xCAFE)];
    let messages: [&[u8]; 8] = [
        b"block 1001",
        b"block 1002",
        b"block 1003",
        b"attestation a",
        b"attestation b",
        b"attestation c",
        b"checkpoint x",
        b"checkpoint y",
    ];
    let mut batch = Vec::with_capacity(messages.len());
    for (i, msg) in messages.iter().enumerate() {
        let signer = &signers[i % signers.len()];
        batch.push(BatchEntry {
            pk: signer.pk_point().clone(),
            msg,
            sig: sign(&curve, signer, msg)?,
        });
    }
    // Sequential baseline: n independent verifications, 2n pairings.
    let t0 = Instant::now();
    let all_ok = batch
        .iter()
        .all(|e| verify(&curve, &engine, &e.pk, e.msg, &e.sig));
    let sequential = t0.elapsed();
    assert!(all_ok, "every signature verifies individually");

    // Deferred accumulation: push n checks, settle once.
    let t0 = Instant::now();
    let batch_ok = batch_verify(&curve, &engine, &batch);
    let batched = t0.elapsed();
    assert!(batch_ok, "honest batch verifies");

    let n = batch.len() as u32;
    println!(
        "batch     : {} sigs, {} signers verified with {} Miller loops",
        batch.len(),
        signers.len(),
        1 + signers.len()
    );
    println!(
        "amortized : {:.2} ms/sig batched vs {:.2} ms/sig sequential ({:.1}x)",
        (batched / n).as_secs_f64() * 1e3,
        (sequential / n).as_secs_f64() * 1e3,
        sequential.as_secs_f64() / batched.as_secs_f64()
    );

    // A single tampered signature must sink the whole batch — and the
    // isolating settle pinpoints the culprit instead of just saying "no".
    batch[5].sig = batch[4].sig.clone();
    assert!(
        !batch_verify(&curve, &engine, &batch),
        "tampered batch rejected"
    );
    match batch_verify_isolating(&curve, &engine, &batch) {
        Err(bad) => {
            assert_eq!(bad, vec![5], "bisection isolates the tampered entry");
            println!("bad batch : rejected, isolated to entries {bad:?}");
        }
        Ok(()) => println!("bad batch : unexpectedly settled"),
    }
    Ok(())
}
