//! BLS short signatures (Boneh-Lynn-Shacham) on BLS12-381 — one of the
//! motivating applications from the paper's introduction.
//!
//! Sign: sigma = [sk]H(m) in G1. Verify: e(sigma, G2) == e(H(m), pk).
//!
//! Batch verify (the throughput path a pairing accelerator serves): draw
//! random 128-bit weights ρᵢ, aggregate signatures and per-signer message
//! hashes with the Pippenger `g1_msm`, and check the whole batch with a
//! single `multi_pair` product — `1 + #signers` Miller loops and one
//! final exponentiation instead of `2n` full pairings, with the random
//! weights preventing cross-message forgery cancellation.
//!
//! ```text
//! cargo run --example bls_signature
//! ```

use finesse_curves::{affine_neg, Affine, Curve, CurveError, FpOps};
use finesse_ff::{BigUint, Fp, Fq};
use finesse_pairing::PairingEngine;
use std::sync::Arc;

struct KeyPair {
    sk: BigUint,
    pk: Affine<Fq>, // [sk] G2
}

fn keygen(curve: &Arc<Curve>, seed: u64) -> KeyPair {
    // Deterministic toy key derivation (do not use for real keys).
    let sk = BigUint::from_u64(seed).modpow(&BigUint::from_u64(3), curve.r());
    let pk = curve.g2_mul(curve.g2_generator(), &sk);
    KeyPair { sk, pk }
}

fn sign(curve: &Arc<Curve>, kp: &KeyPair, msg: &[u8]) -> Result<Affine<Fp>, CurveError> {
    let h = curve.hash_to_g1(msg)?;
    Ok(curve.g1_mul(&h, &kp.sk))
}

fn verify(
    curve: &Arc<Curve>,
    engine: &PairingEngine,
    pk: &Affine<Fq>,
    msg: &[u8],
    sig: &Affine<Fp>,
) -> bool {
    // A message that cannot be hashed cannot have a valid signature.
    let Ok(h) = curve.hash_to_g1(msg) else {
        return false;
    };
    engine.pair(sig, curve.g2_generator()) == engine.pair(&h, pk)
}

/// One `(public key, message, signature)` entry of a verification batch.
struct BatchEntry<'a> {
    pk: Affine<Fq>,
    msg: &'a [u8],
    sig: Affine<Fp>,
}

/// Deterministic 128-bit batch weights (a real verifier would use a CSPRNG;
/// the weights only need to be unpredictable to the signer).
fn batch_weights(n: usize, seed: u64) -> Vec<BigUint> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| BigUint::from_limbs(vec![next(), next() | 1]))
        .collect()
}

/// Verifies a whole batch with one pairing product: for random weights ρᵢ,
/// `e(−Σᵢ ρᵢσᵢ, G2) · Π_signer e(Σ_{i∈signer} ρᵢH(mᵢ), pk) = 1`.
///
/// Both aggregations are Pippenger multi-scalar multiplications
/// (`g1_msm`), and the product is a single `multi_pair` — one shared
/// final exponentiation and `1 + #signers` Miller loops for the entire
/// batch.
fn batch_verify(curve: &Arc<Curve>, engine: &PairingEngine, batch: &[BatchEntry]) -> bool {
    if batch.is_empty() {
        return true;
    }
    let weights = batch_weights(batch.len(), 0x0B5E_55ED);
    // Aggregate all weighted signatures in one MSM.
    let sigs: Vec<Affine<Fp>> = batch.iter().map(|e| e.sig.clone()).collect();
    let Ok(sig_agg) = curve.g1_msm(&sigs, &weights) else {
        return false;
    };
    let ops = FpOps(Arc::clone(curve.fp()));
    let mut pairs: Vec<(Affine<Fp>, Affine<Fq>)> =
        vec![(affine_neg(&ops, &sig_agg), curve.g2_generator().clone())];
    // Group the weighted message hashes per signer: one MSM + one Miller
    // loop per distinct public key.
    let mut seen: Vec<&Affine<Fq>> = Vec::new();
    for entry in batch {
        if seen.iter().any(|pk| **pk == entry.pk) {
            continue;
        }
        seen.push(&entry.pk);
        let mut hashes = Vec::new();
        let mut key_weights = Vec::new();
        for (other, w) in batch.iter().zip(&weights) {
            if other.pk == entry.pk {
                let Ok(h) = curve.hash_to_g1(other.msg) else {
                    return false;
                };
                hashes.push(h);
                key_weights.push(w.clone());
            }
        }
        let Ok(agg) = curve.g1_msm(&hashes, &key_weights) else {
            return false;
        };
        pairs.push((agg, entry.pk.clone()));
    }
    engine.gt_is_one(&engine.multi_pair(&pairs))
}

fn main() {
    let curve = Curve::by_name("BLS12-381");
    let engine = PairingEngine::new(curve.clone());
    let kp = keygen(&curve, 0xF00D_FACE);

    let msg = b"agile pairing accelerators";
    let sig = sign(&curve, &kp, msg).expect("hash-to-curve succeeds for real curves");
    println!("message   : {:?}", std::str::from_utf8(msg).unwrap());
    println!("signature : ({}, ...)", sig.x);

    assert!(
        verify(&curve, &engine, &kp.pk, msg, &sig),
        "valid signature verifies"
    );
    println!("verify    : ok");

    assert!(!verify(&curve, &engine, &kp.pk, b"tampered message", &sig));
    println!("tampered  : rejected");

    let other = keygen(&curve, 0xBAD_5EED);
    assert!(!verify(&curve, &engine, &other.pk, msg, &sig));
    println!("wrong key : rejected");

    // --- batch verification: 3 signers, 8 signatures, one pairing product
    let signers = [kp, keygen(&curve, 0xBAD_5EED), keygen(&curve, 0xCAFE)];
    let messages: [&[u8]; 8] = [
        b"block 1001",
        b"block 1002",
        b"block 1003",
        b"attestation a",
        b"attestation b",
        b"attestation c",
        b"checkpoint x",
        b"checkpoint y",
    ];
    let mut batch: Vec<BatchEntry> = messages
        .iter()
        .enumerate()
        .map(|(i, msg)| {
            let signer = &signers[i % signers.len()];
            BatchEntry {
                pk: signer.pk.clone(),
                msg,
                sig: sign(&curve, signer, msg).expect("hash-to-curve succeeds"),
            }
        })
        .collect();
    assert!(
        batch_verify(&curve, &engine, &batch),
        "honest batch verifies"
    );
    println!(
        "batch     : {} sigs, {} signers verified with {} pairings",
        batch.len(),
        signers.len(),
        1 + signers.len()
    );

    // A single tampered signature must sink the whole batch.
    batch[5].sig = batch[4].sig.clone();
    assert!(
        !batch_verify(&curve, &engine, &batch),
        "tampered batch rejected"
    );
    println!("bad batch : rejected");
}
