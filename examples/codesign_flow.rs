//! The full Finesse design flow: curve in, validated accelerator and
//! architectural feedback out "in minutes" (paper section 4.5).
//!
//! ```text
//! cargo run --example codesign_flow
//! ```

use finesse_core::{DesignFlow, FlowConfig};

fn main() {
    // A design described in the plain-text configuration format (the
    // paper's YAML role).
    let cfg = FlowConfig::parse(
        "
        curve = BN254N
        long = 38          # mmul pipeline depth
        short = 8
        linear_units = 1   # single issue
        variants = all_karatsuba
        cores = 8
        ",
    )
    .expect("valid config");

    let accelerator = DesignFlow::from_config(&cfg).build().expect("compiles");
    println!("{}", accelerator.report());

    // The validation stage: run the compiled binary on test vectors and
    // compare against the reference pairing library.
    let v = accelerator.validate(3);
    println!(
        "\nvalidation: {}/{} vectors match the reference pairing",
        v.matching, v.vectors
    );
    assert!(v.all_passed());
}
