//! The full Finesse design flow: curve in, validated accelerator and
//! architectural feedback out "in minutes" (paper section 4.5).
//!
//! ```text
//! cargo run --example codesign_flow
//! ```
//!
//! The closing step prices the simulated accelerator against the
//! *measured* software baseline: `CostModel::load` reads the medians
//! CI commits to `results/BENCH_fieldops.json` (falling back to the
//! analytic model when the file is absent, e.g. when running from a
//! different working directory), and `compare_with_software` turns the
//! simulated latency into the paper's headline speedup. The same model
//! drives `experiments -- --codesign-report` (table2/fig2).

use finesse_core::{compare_with_software, CostModel, DesignFlow, FlowConfig};
use std::path::Path;

fn main() {
    // A design described in the plain-text configuration format (the
    // paper's YAML role).
    let cfg = FlowConfig::parse(
        "
        curve = BN254N
        long = 38          # mmul pipeline depth
        short = 8
        linear_units = 1   # single issue
        variants = all_karatsuba
        cores = 8
        ",
    )
    .expect("valid config");

    let accelerator = DesignFlow::from_config(&cfg).build().expect("compiles");
    println!("{}", accelerator.report());

    // Price the design against the current software floor: measured
    // medians when the committed bench JSON is on disk, analytic
    // defaults otherwise. This is the co-design loop closing — the same
    // CostModel the DSE and the paper artifacts (table2/fig2) use.
    let model = CostModel::load(Path::new("results/BENCH_fieldops.json"))
        .unwrap_or_else(|_| CostModel::analytic());
    match compare_with_software("BN254N", accelerator.evaluation(), &model) {
        Ok(cmp) => println!(
            "\nvs software ({}): {:.2} ms SW pairing -> {:.1} us simulated = x{:.0}",
            model.describe(),
            cmp.sw_pairing_ns / 1e6,
            cmp.hw_pairing_ns / 1e3,
            cmp.speedup
        ),
        Err(e) => println!("\nvs software: unavailable ({e})"),
    }

    // The validation stage: run the compiled binary on test vectors and
    // compare against the reference pairing library.
    let v = accelerator.validate(3);
    println!(
        "\nvalidation: {}/{} vectors match the reference pairing",
        v.matching, v.vectors
    );
    assert!(v.all_passed());
}
