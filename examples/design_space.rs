//! Design-space exploration: operator variants x hardware models, ranked
//! under different objectives (paper section 3.6 / Figure 10).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use finesse_compiler::tower_shape;
use finesse_curves::Curve;
use finesse_dse::{best_point, explore, DesignPoint, Objective};
use finesse_hw::HwModel;
use finesse_ir::VariantConfig;

fn main() {
    let curve = Curve::by_name("BN254N");
    let shape = tower_shape(&curve);

    let mut points = Vec::new();
    for (vname, v) in [
        ("all-karatsuba", VariantConfig::all_karatsuba(&shape)),
        ("all-schoolbook", VariantConfig::all_schoolbook(&shape)),
        ("manual", VariantConfig::manual(&shape)),
    ] {
        for hw in [HwModel::single_issue(38, 8), HwModel::vliw(2, 8, 2)] {
            points.push(DesignPoint {
                label: format!("{vname} @ {}", hw.name),
                variants: v.clone(),
                hw,
            });
        }
    }

    println!("evaluating {} design points...\n", points.len());
    let results = explore(&curve, points, 1);
    println!(
        "{:<42} {:>10} {:>6} {:>10} {:>9}",
        "point", "cycles", "IPC", "area mm2", "kops"
    );
    for (p, r) in &results {
        match r {
            Ok(e) => println!(
                "{:<42} {:>10} {:>6.2} {:>10.2} {:>9.1}",
                p.label,
                e.cycles,
                e.ipc,
                e.area.total(),
                e.throughput_ops / 1000.0
            ),
            Err(e) => println!("{:<42} failed: {e}", p.label),
        }
    }

    for obj in [Objective::Cycles, Objective::Area, Objective::AreaDelay] {
        if let Some((p, _)) = best_point(&results, obj) {
            println!("best under {obj:?}: {}", p.label);
        }
    }
}
