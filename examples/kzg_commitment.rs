//! A miniature KZG polynomial commitment (Kate-Zaverucha-Goldberg) — the
//! SNARK building block cited in the paper's introduction.
//!
//! Trusted setup: powers [tau^i]G1 and [tau]G2. Commit C = [p(tau)]G1.
//! Open at z with witness W = [(p(tau) - p(z))/(tau - z)]G1. Verify with
//! one pairing equation: e(C - [p(z)]G1, G2) == e(W, [tau]G2 - [z]G2).
//!
//! ```text
//! cargo run --example kzg_commitment
//! ```

use finesse_curves::point::affine_neg;
use finesse_curves::{Affine, Curve, FpOps, FqOps};
use finesse_ff::{BigUint, Fp, Fq};
use finesse_pairing::PairingEngine;
use std::sync::Arc;

/// Polynomial with coefficients mod r (little-endian).
#[derive(Clone)]
struct Poly(Vec<BigUint>);

impl Poly {
    fn eval(&self, x: &BigUint, r: &BigUint) -> BigUint {
        let mut acc = BigUint::zero();
        for c in self.0.iter().rev() {
            acc = (&(&acc * x) + c).rem(r);
        }
        acc
    }

    /// Synthetic division by (X - z): returns the quotient of p(X) - p(z).
    fn divide_by_linear(&self, z: &BigUint, r: &BigUint) -> Poly {
        let mut q = vec![BigUint::zero(); self.0.len().saturating_sub(1)];
        let mut carry = BigUint::zero();
        for i in (1..self.0.len()).rev() {
            carry = (&self.0[i] + &(&carry * z)).rem(r);
            q[i - 1] = carry.clone();
        }
        Poly(q)
    }
}

struct Setup {
    g1_powers: Vec<Affine<Fp>>, // [tau^i] G1
    g2_tau: Affine<Fq>,
}

fn trusted_setup(curve: &Arc<Curve>, degree: usize) -> Setup {
    // Toy ceremony: tau is a fixed secret (a real setup discards it).
    // Every [tau^i]G1 is a multiplication of the *generator*, so the whole
    // powers-of-tau table rides the curve's cached fixed-base comb.
    let tau = BigUint::from_u64(0x5EED_CAFE).rem(curve.r());
    let mut g1_powers = Vec::with_capacity(degree + 1);
    let mut t_pow = BigUint::one();
    for _ in 0..=degree {
        g1_powers.push(curve.g1_mul(curve.g1_generator(), &t_pow));
        t_pow = (&t_pow * &tau).rem(curve.r());
    }
    let g2_tau = curve.g2_mul(curve.g2_generator(), &tau);
    Setup { g1_powers, g2_tau }
}

/// `C = [p(tau)]G1 = Σ cᵢ·[tauⁱ]G1` — one multi-scalar multiplication
/// over the setup powers instead of a loop of independent ladders.
fn commit(curve: &Arc<Curve>, setup: &Setup, p: &Poly) -> Affine<Fp> {
    curve
        .g1_msm(&setup.g1_powers[..p.0.len()], &p.0)
        .expect("one coefficient per setup power")
}

fn main() {
    let curve = Curve::by_name("BN254N");
    let engine = PairingEngine::new(curve.clone());
    let r = curve.r().clone();

    // p(X) = 7 + 3X + 5X^2 + X^3
    let p = Poly(vec![
        BigUint::from_u64(7),
        BigUint::from_u64(3),
        BigUint::from_u64(5),
        BigUint::from_u64(1),
    ]);
    let setup = trusted_setup(&curve, 3);
    let commitment = commit(&curve, &setup, &p);
    println!("commitment C = [p(tau)]G1 computed");

    // Open at z = 11.
    let z = BigUint::from_u64(11);
    let y = p.eval(&z, &r);
    println!("claimed evaluation: p(11) = {y}");

    // Witness polynomial q(X) = (p(X) - y)/(X - z).
    let q = p.divide_by_linear(&z, &r);
    let witness = commit(&curve, &setup, &q);

    // Verify: e(C - [y]G1, G2) == e(W, [tau - z]G2).
    let fp_ops = FpOps(curve.fp().clone());
    let c_minus_y = {
        let y_g1 = curve.g1_mul(curve.g1_generator(), &y);
        curve.g1_add(&commitment, &affine_neg(&fp_ops, &y_g1))
    };
    let tau_minus_z = {
        let z_g2 = curve.g2_mul(curve.g2_generator(), &z);
        let ops = FqOps(curve.tower());
        curve.g2_add(&setup.g2_tau, &affine_neg(&ops, &z_g2))
    };
    let lhs = engine.pair(&c_minus_y, curve.g2_generator());
    let rhs = engine.pair(&witness, &tau_minus_z);
    assert_eq!(lhs, rhs, "KZG verification equation holds");
    println!("opening verified: e(C - [y]G1, G2) == e(W, [tau - z]G2)");

    // A wrong claimed value must fail.
    let bad = (&y + &BigUint::one()).rem(&r);
    let bad_c_minus_y = {
        let y_g1 = curve.g1_mul(curve.g1_generator(), &bad);
        curve.g1_add(&commitment, &affine_neg(&fp_ops, &y_g1))
    };
    assert_ne!(engine.pair(&bad_c_minus_y, curve.g2_generator()), rhs);
    println!("forged evaluation rejected");
}
