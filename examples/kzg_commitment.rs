//! A miniature KZG polynomial commitment (Kate-Zaverucha-Goldberg) — the
//! SNARK building block cited in the paper's introduction.
//!
//! Trusted setup: powers [tau^i]G1 and [tau]G2. Commit C = [p(tau)]G1.
//! Open at z with witness W = [(p(tau) - p(z))/(tau - z)]G1. Verify the
//! equation in its *fixed-G2* rearrangement,
//!
//! ```text
//! e(C - [y]G1 + [z]W, G2) == e(W, [tau]G2)
//! ```
//!
//! so both G2 inputs — the generator and the SRS element [tau]G2 — are
//! independent of the opening being checked. That is exactly the shape
//! the engine's prepared-G2 cache serves: every opening in a batch rides
//! the same two precomputed line schedules, and a [`PairingAccumulator`]
//! settles any number of openings with two Miller loops and one final
//! exponentiation.
//!
//! ```text
//! cargo run --example kzg_commitment
//! ```

use finesse_curves::point::affine_neg;
use finesse_curves::{Affine, Compression, Curve, FpOps};
use finesse_ff::{BigUint, Fp, Fq};
use finesse_pairing::{PairingAccumulator, PairingEngine};
use std::sync::Arc;

/// Polynomial with coefficients mod r (little-endian).
#[derive(Clone)]
struct Poly(Vec<BigUint>);

impl Poly {
    fn eval(&self, x: &BigUint, r: &BigUint) -> BigUint {
        let mut acc = BigUint::zero();
        for c in self.0.iter().rev() {
            acc = (&(&acc * x) + c).rem(r);
        }
        acc
    }

    /// Synthetic division by (X - z): returns the quotient of p(X) - p(z).
    fn divide_by_linear(&self, z: &BigUint, r: &BigUint) -> Poly {
        let mut q = vec![BigUint::zero(); self.0.len().saturating_sub(1)];
        let mut carry = BigUint::zero();
        for i in (1..self.0.len()).rev() {
            carry = (&self.0[i] + &(&carry * z)).rem(r);
            q[i - 1] = carry.clone();
        }
        Poly(q)
    }
}

struct Setup {
    g1_powers: Vec<Affine<Fp>>, // [tau^i] G1
    g2_tau: Affine<Fq>,
}

fn trusted_setup(curve: &Arc<Curve>, degree: usize) -> Setup {
    // Toy ceremony: tau is a fixed secret (a real setup discards it).
    // Every [tau^i]G1 is a multiplication of the *generator*, so the whole
    // powers-of-tau table rides the curve's cached fixed-base comb.
    let tau = BigUint::from_u64(0x5EED_CAFE).rem(curve.r());
    let mut g1_powers = Vec::with_capacity(degree + 1);
    let mut t_pow = BigUint::one();
    for _ in 0..=degree {
        g1_powers.push(curve.g1_mul(curve.g1_generator(), &t_pow));
        t_pow = (&t_pow * &tau).rem(curve.r());
    }
    let g2_tau = curve.g2_mul(curve.g2_generator(), &tau);
    Setup { g1_powers, g2_tau }
}

/// `C = [p(tau)]G1 = Σ cᵢ·[tauⁱ]G1` — one multi-scalar multiplication
/// over the setup powers instead of a loop of independent ladders.
fn commit(curve: &Arc<Curve>, setup: &Setup, p: &Poly) -> Affine<Fp> {
    curve
        .g1_msm(&setup.g1_powers[..p.0.len()], &p.0)
        .expect("one coefficient per setup power")
}

/// One claimed opening `p(z) = y` with its witness `W`.
struct Opening {
    commitment: Affine<Fp>,
    z: BigUint,
    y: BigUint,
    witness: Affine<Fp>,
}

/// Opens `p` at `z`: evaluates and commits to the quotient polynomial.
fn open(curve: &Arc<Curve>, setup: &Setup, p: &Poly, z: u64) -> Opening {
    let z = BigUint::from_u64(z);
    let y = p.eval(&z, curve.r());
    let q = p.divide_by_linear(&z, curve.r());
    Opening {
        commitment: commit(curve, setup, p),
        z,
        y,
        witness: commit(curve, setup, &q),
    }
}

/// Pushes the fixed-G2 verification check of one opening,
/// `e(C - [y]G1 + [z]W, G2) =? e(W, [tau]G2)`, onto the accumulator.
/// Every opening references the same two G2 points, so the batch settles
/// with exactly two (cached, prepared) Miller loops.
fn push_opening(
    curve: &Arc<Curve>,
    setup: &Setup,
    acc: &mut PairingAccumulator<'_>,
    opening: &Opening,
) {
    let fp_ops = FpOps(curve.fp().clone());
    let y_g1 = curve.g1_mul(curve.g1_generator(), &opening.y);
    let z_w = curve.g1_mul(&opening.witness, &opening.z);
    let lhs = curve.g1_add(
        &curve.g1_add(&opening.commitment, &affine_neg(&fp_ops, &y_g1)),
        &z_w,
    );
    acc.push_check(&lhs, curve.g2_generator(), &opening.witness, &setup.g2_tau);
}

fn main() {
    let curve = Curve::by_name("BN254N");
    let engine = PairingEngine::new(curve.clone());
    let r = curve.r().clone();

    // p(X) = 7 + 3X + 5X^2 + X^3
    let p = Poly(vec![
        BigUint::from_u64(7),
        BigUint::from_u64(3),
        BigUint::from_u64(5),
        BigUint::from_u64(1),
    ]);
    let setup = trusted_setup(&curve, 3);
    println!("commitment C = [p(tau)]G1 computed");

    // A commitment is what the prover *sends*: round-trip it through the
    // validated wire format, as a verifier receiving untrusted bytes
    // would. The strict decoder re-checks canonical limbs, curve
    // membership, and (on curves with a cofactor) the subgroup.
    let c = commit(&curve, &setup, &p);
    let c_bytes = curve.encode_g1(&c, Compression::Compressed);
    let c_rx = curve
        .decode_g1(&c_bytes)
        .expect("honest commitment survives the wire");
    assert_eq!(c_rx, c, "wire round-trip is the identity");
    println!(
        "commitment travels as {} bytes (compressed), round-trip ok",
        c_bytes.len()
    );

    // A tampered encoding must produce a typed rejection, never a
    // silently different commitment.
    let mut tampered = c_bytes.clone();
    tampered[c_bytes.len() / 2] ^= 0x01;
    match curve.decode_g1(&tampered) {
        Err(e) => println!("tampered commitment rejected ({e})"),
        Ok(p) => assert_eq!(p, c, "a decode may only succeed on the original point"),
    }

    // Open the same commitment at several points and verify all openings
    // in one settle: two Miller loops total, not two per opening.
    let openings: Vec<Opening> = [11u64, 42, 1_000_003]
        .iter()
        .map(|z| open(&curve, &setup, &p, *z))
        .collect();
    for opening in &openings {
        println!("claimed evaluation: p({}) = {}", opening.z, opening.y);
    }
    let mut acc = PairingAccumulator::with_label(&engine, b"finesse-kzg-batch-v1");
    for opening in &openings {
        push_opening(&curve, &setup, &mut acc, opening);
    }
    let n = acc.len();
    assert!(acc.settle(), "KZG verification equation holds");
    println!("{n} openings verified: e(C - [y]G1 + [z]W, G2) == e(W, [tau]G2)");

    // A forged claimed value must sink the batch it rides in.
    let mut forged = open(&curve, &setup, &p, 11);
    forged.y = (&forged.y + &BigUint::one()).rem(&r);
    let mut acc = PairingAccumulator::with_label(&engine, b"finesse-kzg-batch-v1");
    for opening in &openings {
        push_opening(&curve, &setup, &mut acc, opening);
    }
    push_opening(&curve, &setup, &mut acc, &forged);
    assert!(!acc.settle(), "forged evaluation must be rejected");
    println!("forged evaluation rejected");

    // The isolating settle names the offending opening instead of only
    // failing the batch: honest checks at 0..=2, the forgery at 3.
    let mut acc = PairingAccumulator::with_label(&engine, b"finesse-kzg-batch-v1");
    for opening in &openings {
        push_opening(&curve, &setup, &mut acc, opening);
    }
    push_opening(&curve, &setup, &mut acc, &forged);
    let bad = acc
        .settle_isolating()
        .expect_err("forged batch cannot settle");
    assert_eq!(bad, vec![3], "bisection isolates the forged opening");
    println!("forgery isolated to batch index {:?}", bad);
}
