//! KZG polynomial commitments on the `finesse-poly` crate.
//!
//! The serving-layer flow end to end: generate an [`Srs`], round-trip it
//! through the validated wire format (with a tamper rejection), commit
//! to a polynomial, open it at single points and at a whole point set
//! with one batched proof, and settle every claim through the pairing
//! accumulator. Every verification equation is in *fixed-G2* form,
//!
//! ```text
//! e(C - [y]G1 + [z]W, G2) == e(W, [tau]G2)
//! ```
//!
//! so both G2 inputs — the generator and the SRS element [tau]G2 — are
//! independent of the opening being checked. That is exactly the shape
//! the engine's prepared-G2 cache serves: every claim in a batch rides
//! the same two precomputed line schedules, and the batch settles with
//! two Miller loops and one final exponentiation. A forged claim at the
//! end exercises the isolating verifier, which names the offending
//! claim instead of discarding the batch.
//!
//! ```text
//! cargo run --example kzg_commitment
//! ```

use finesse::curves::Curve;
use finesse::ff::BigUint;
use finesse::pairing::{PairingAccumulator, PairingEngine};
use finesse::poly::{Claim, Kzg, PolyError, Polynomial, Srs};
use finesse::FinesseError;
use std::time::Instant;

fn main() -> Result<(), FinesseError> {
    let curve = Curve::by_name("BN254N");
    let engine = PairingEngine::new(curve.clone());
    let r = curve.r();
    println!("=== KZG polynomial commitments ({}) ===\n", curve.name());

    // --- Trusted setup -------------------------------------------------
    let t = Instant::now();
    let srs = Srs::generate(&curve, 15, b"kzg-example-2025");
    println!(
        "SRS       : {} G1 powers + [tau]G2   ({:.1} ms, riding the fixed-base comb)",
        srs.powers_g1().len(),
        t.elapsed().as_secs_f64() * 1e3
    );

    // The SRS survives its canonical wire format; a flipped byte does
    // not (strict decode: every point re-checked canonical + on-curve +
    // subgroup).
    let bytes = srs.to_bytes();
    let restored = Srs::from_bytes(&curve, &bytes)?;
    assert_eq!(restored.powers_g1(), srs.powers_g1());
    let mut tampered = bytes.clone();
    tampered[bytes.len() / 2] ^= 0x40;
    match Srs::from_bytes(&curve, &tampered) {
        Err(e) => println!(
            "wire      : {} bytes round-trip; tampered byte -> {e}",
            bytes.len()
        ),
        Ok(_) => println!("wire      : tampered encoding unexpectedly accepted!"),
    }

    // --- Commit and open -----------------------------------------------
    let kzg = Kzg::new(&engine, &srs)?;
    let poly = Polynomial::new(
        (1..=12u64).map(|i| BigUint::from_u64(i * i + 1)).collect(),
        r,
    );
    let commitment = kzg.commit(&poly)?;
    println!(
        "commit    : C = [p(tau)]G1 for a degree-{} polynomial",
        poly.coeffs().len() - 1
    );

    let z = BigUint::from_u64(0x5EED);
    let opening = kzg.open(&poly, &z)?;
    kzg.verify(&commitment, &opening)?;
    println!("open      : p(0x5EED) claimed and verified at one point");

    // --- One proof for many points ------------------------------------
    let zs: Vec<BigUint> = (20..28u64).map(BigUint::from_u64).collect();
    let batch = kzg.open_batch(&poly, &commitment, &zs)?;
    println!(
        "open_batch: {} points -> one (W, W') proof pair",
        batch.points.len()
    );

    // --- Settle a whole batch in two Miller loops ----------------------
    let mut claims = vec![Claim::Batch {
        commitment: commitment.clone(),
        opening: batch,
    }];
    for i in 0..6u64 {
        let z = BigUint::from_u64(1000 + i);
        claims.push(Claim::Single {
            commitment: commitment.clone(),
            opening: kzg.open(&poly, &z)?,
        });
    }
    let t = Instant::now();
    kzg.verify_batch(&claims)?;
    let (prepared, _) = engine.prepared_cache_stats();
    println!(
        "verify    : {} claims settled in one shot ({:.1} ms, {} Miller loops via prepared-G2 cache)",
        claims.len(),
        t.elapsed().as_secs_f64() * 1e3,
        prepared
    );

    // --- Fault isolation -----------------------------------------------
    // Forge one claim's evaluation; the isolating settle names it.
    if let Claim::Single { opening, .. } = &mut claims[3] {
        opening.y = BigUint::from_u64(0xBAD);
    }
    match kzg.verify_batch(&claims) {
        Err(PolyError::BatchRejected { bad }) => {
            println!("isolate   : forged claim detected at indices {bad:?}")
        }
        other => println!("isolate   : unexpected result {other:?}"),
    }

    // The same claims compose with arbitrary other checks on a shared
    // accumulator — the public push_claim surface.
    let mut acc = PairingAccumulator::with_label(&engine, b"kzg-example-mixed");
    for claim in &claims {
        kzg.push_claim(&mut acc, claim)?;
    }
    match acc.settle_isolating() {
        Err(bad) => println!("accumulate: shared accumulator isolates checks {bad:?}"),
        Ok(()) => println!("accumulate: unexpected pass"),
    }

    println!("\nAll KZG flows complete.");
    Ok(())
}
