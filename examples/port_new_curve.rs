//! Porting a new curve with the operator kit (paper section 4.5 "for
//! pairing researchers"): define family + generator t, and the framework
//! synthesizes parameters, validates them, finds the twist, and builds a
//! working accelerator — "architectural feedback in just minutes".
//!
//! ```text
//! cargo run --release --example port_new_curve
//! ```

use finesse_compiler::{compile_pairing, CompileOptions};
use finesse_curves::{Curve, Family};
use finesse_ff::{BigInt, BigUint};
use finesse_hw::HwModel;
use finesse_ir::{TowerShape, VariantConfig};
use finesse_pairing::PairingEngine;
use finesse_sim::simulate;
use std::sync::Arc;

fn main() {
    // A BLS12 curve NOT in the built-in table: t = -2^77 - 2^59 + 2^9
    // (t = 1 mod 3 so p is integral; both p and r happen to be prime).
    let t = BigInt::from_power_terms(&[(-1, 77), (-1, 59), (1, 9)]);
    println!("porting BLS12 curve with t = {t} ...");

    let curve = match Curve::new(
        "BLS12-custom",
        Family::Bls12,
        t,
        None,
        -1,
        None,
        &[1, 1],
        None,
        0,
    ) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            println!("parameter set rejected: {e}");
            println!("(pick another sparse t — the kit validates everything)");
            return;
        }
    };
    println!(
        "p bits = {}, r bits = {}, twist = {:?}",
        curve.p().bits(),
        curve.r().bits(),
        curve.twist()
    );

    // The reference pairing works immediately...
    let engine = PairingEngine::new(curve.clone());
    let e = engine.pair(curve.g1_generator(), curve.g2_generator());
    let a = BigUint::from_u64(97);
    assert_eq!(
        engine.pair(
            &curve.g1_mul(curve.g1_generator(), &a),
            curve.g2_generator()
        ),
        engine.gt_pow(&e, &a)
    );
    println!("bilinearity on the new curve: ok");

    // ...and so does the whole accelerator flow.
    let shape = TowerShape::for_curve(&curve);
    let variants = VariantConfig::all_karatsuba(&shape);
    let hw = HwModel::paper_default();
    let compiled = compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap();
    let insts = compiled.image.spec.decode(&compiled.image.words).unwrap();
    let report = simulate(&insts, &compiled.hw, None);
    println!(
        "accelerator: {} instructions, {} cycles, IPC {:.2}, compiled in {:?}",
        compiled.instruction_count(),
        report.cycles,
        report.ipc(),
        compiled.compile_time
    );
}
