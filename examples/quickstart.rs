//! Quickstart: compute an optimal-Ate pairing and check bilinearity.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use finesse_curves::Curve;
use finesse_ff::BigUint;
use finesse_pairing::PairingEngine;

fn main() {
    // Every Table 2 curve is available by name; BN254N is the paper's
    // headline evaluation curve.
    let curve = Curve::by_name("BN254N");
    println!(
        "curve  : {} (p has {} bits, r has {} bits)",
        curve.name(),
        curve.p().bits(),
        curve.r().bits()
    );

    let engine = PairingEngine::new(curve.clone());
    let g1 = curve.g1_generator();
    let g2 = curve.g2_generator();

    let e = engine.pair(g1, g2);
    println!("e(G1, G2) != 1 ? {}", !engine.gt_is_one(&e));

    // Bilinearity: e([a]P, [b]Q) = e(P, Q)^(ab).
    let a = BigUint::from_u64(6);
    let b = BigUint::from_u64(7);
    let lhs = engine.pair(&curve.g1_mul(g1, &a), &curve.g2_mul(g2, &b));
    let rhs = engine.gt_pow(&e, &BigUint::from_u64(42));
    assert_eq!(lhs, rhs, "bilinearity holds");
    println!("bilinearity: e([6]P, [7]Q) == e(P, Q)^42  ok");

    // GT elements have order r.
    assert!(engine.gt_is_one(&engine.gt_pow(&e, curve.r())));
    println!("GT order  : e(P, Q)^r == 1               ok");
}
